// Tests for the Appendix A models: the A.2 Lemma as property tests over
// random networks, the A.3 equilibrium identities, and the A.1 queueing
// bounds validated by Monte Carlo.
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/convergence.h"
#include "analytic/fairness.h"
#include "analytic/queueing.h"
#include "sim/rng.h"

namespace hpcc::analytic {
namespace {

ResourceNetwork SingleLink(double capacity, size_t paths) {
  ResourceNetwork net;
  net.incidence = {std::vector<bool>(paths, true)};
  net.capacities = {capacity};
  return net;
}

TEST(Convergence, SingleBottleneckConvergesInOneStep) {
  ResourceNetwork net = SingleLink(100.0, 4);
  std::vector<double> r{50, 50, 50, 50};  // 2x overload
  r = Step(net, r);
  // One update: exact target utilization (the "one rate update step" claim).
  for (double x : r) EXPECT_DOUBLE_EQ(x, 25.0);
  EXPECT_TRUE(IsFeasible(net, r));
  EXPECT_TRUE(IsParetoOptimal(net, r));
}

TEST(Convergence, UnderloadedLinkScalesUpInOneStep) {
  ResourceNetwork net = SingleLink(100.0, 2);
  std::vector<double> r{10, 30};
  r = Step(net, r);
  EXPECT_DOUBLE_EQ(r[0] + r[1], 100.0);
  // MI preserves rate ratios (fairness untouched, §3.2's decoupling).
  EXPECT_NEAR(r[1] / r[0], 3.0, 1e-12);
}

TEST(Convergence, TwoBottleneckChain) {
  // Path 0 uses both links; paths 1 and 2 use one each.
  ResourceNetwork net;
  net.incidence = {{true, true, false}, {true, false, true}};
  net.capacities = {100.0, 50.0};
  std::vector<double> r{40, 80, 40};
  // The tightest bottleneck (resource 1, ratio 1.6) saturates after ONE step
  // and its paths' rates are pinned from then on — the exact part of the
  // Lemma. Remaining paths converge geometrically toward their bottleneck.
  std::vector<double> r1 = Step(net, r);
  EXPECT_NEAR(Loads(net, r1)[1], 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(r1[0], 25.0);
  EXPECT_DOUBLE_EQ(r1[2], 25.0);
  ConvergenceResult res = RunToFixedPoint(net, r, /*max_steps=*/500, 1e-12);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(IsFeasible(net, res.rates));
  EXPECT_TRUE(IsParetoOptimal(net, res.rates, 1e-5));
  // Fixed point: path 1 fills the slack on resource 0 (rate 75).
  EXPECT_NEAR(res.rates[1], 75.0, 1e-6);
}

ResourceNetwork RandomNetwork(sim::Rng& rng) {
  const size_t resources = 1 + rng.Index(6);
  const size_t paths = 1 + rng.Index(8);
  ResourceNetwork net;
  net.incidence.assign(resources, std::vector<bool>(paths, false));
  net.capacities.resize(resources);
  for (size_t i = 0; i < resources; ++i) {
    net.capacities[i] = 10.0 + rng.Uniform() * 1000.0;
  }
  for (size_t j = 0; j < paths; ++j) {
    // Each path uses a random non-empty subset of resources.
    bool any = false;
    for (size_t i = 0; i < resources; ++i) {
      if (rng.Uniform() < 0.4) {
        net.incidence[i][j] = true;
        any = true;
      }
    }
    if (!any) net.incidence[rng.Index(resources)][j] = true;
  }
  return net;
}

// The Lemma of Appendix A.2, checked on random topologies.
class LemmaProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LemmaProperty, HoldsOnRandomNetworks) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    ResourceNetwork net = RandomNetwork(rng);
    ASSERT_TRUE(net.Valid());
    std::vector<double> r(net.num_paths());
    for (double& x : r) x = 0.1 + rng.Uniform() * 500.0;

    // (i) after one step rates are feasible.
    std::vector<double> r1 = Step(net, r);
    EXPECT_TRUE(IsFeasible(net, r1, 1e-9));

    // (i-b) the globally most-overloaded resource saturates exactly after
    // one step (the exact part of the Lemma's proof).
    {
      const std::vector<double> y0 = Loads(net, r);
      size_t k = 0;
      double best = 0;
      for (size_t i = 0; i < y0.size(); ++i) {
        if (y0[i] / net.capacities[i] > best) {
          best = y0[i] / net.capacities[i];
          k = i;
        }
      }
      const std::vector<double> y1 = Loads(net, r1);
      EXPECT_NEAR(y1[k], net.capacities[k], net.capacities[k] * 1e-9);
    }

    // (ii) thereafter rates are non-decreasing.
    std::vector<double> prev = r1;
    for (int n = 0; n < static_cast<int>(net.num_resources()) + 2; ++n) {
      std::vector<double> next = Step(net, prev);
      for (size_t j = 0; j < next.size(); ++j) {
        EXPECT_GE(next[j], prev[j] * (1 - 1e-9));
      }
      prev = std::move(next);
    }

    // (iii) the recursion converges to a Pareto-optimal fixed point (paths
    // sharing a pinned resource approach it geometrically, so we iterate to
    // numerical convergence rather than exactly I steps).
    ConvergenceResult res = RunToFixedPoint(net, prev, 20'000, 1e-13);
    EXPECT_TRUE(res.converged);
    EXPECT_TRUE(IsFeasible(net, res.rates, 1e-9));
    EXPECT_TRUE(IsParetoOptimal(net, res.rates, 1e-4));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 42));

TEST(Fairness, EquilibriumIdentities) {
  // R = a (1 - Ut/U)^-1 and its inverse are consistent.
  const double a = 0.02;
  const double ut = 0.95;
  const double u = 0.97;
  const double r = EquilibriumRate(a, ut, u);
  EXPECT_NEAR(EquilibriumUtilization(a, ut, r), u, 1e-12);
}

TEST(Fairness, UtilizationAboveTargetGrowsWithA) {
  const double ut = 0.95;
  const double rate = 1.0;
  EXPECT_GT(EquilibriumUtilization(0.02, ut, rate),
            EquilibriumUtilization(0.01, ut, rate));
  EXPECT_GT(EquilibriumUtilization(0.01, ut, rate), ut);
}

TEST(Fairness, StabilityBoundMatchesAppendix) {
  // U(1) < 100% iff a < R(1)(1 - Utarget): at Ut=95%, a must be < 5% of R.
  EXPECT_NEAR(MaxStableAdditiveStep(0.95, 1.0), 0.05, 1e-12);
  const double a_ok = 0.049;
  EXPECT_LT(EquilibriumUtilization(a_ok, 0.95, 1.0), 1.0);
  const double a_bad = 0.051;
  EXPECT_GT(EquilibriumUtilization(a_bad, 0.95, 1.0), 1.0);
}

TEST(Fairness, AlphaAggregateLimits) {
  const std::vector<double> r{4.0, 8.0, 16.0};
  // alpha -> inf: min.
  EXPECT_NEAR(AlphaFairAggregate(r, 1000.0), 4.0, 1e-9);
  // alpha = 1: harmonic composition 1/R = sum 1/Ri.
  EXPECT_NEAR(AlphaFairAggregate(r, 1.0), 1.0 / (0.25 + 0.125 + 0.0625),
              1e-9);
  // Monotone in alpha.
  EXPECT_LT(AlphaFairAggregate(r, 1.0), AlphaFairAggregate(r, 4.0));
  EXPECT_LT(AlphaFairAggregate(r, 4.0), AlphaFairAggregate(r, 64.0));
}

TEST(Queueing, MeanFormulaAtFullLoad) {
  // sqrt(pi*50/8) ~ 4.43: "less than 5 with 50 sources" (A.1).
  EXPECT_NEAR(MeanQueueAtFullLoad(50), 4.43, 0.01);
  EXPECT_LT(MeanQueueAtFullLoad(50), 5.0);
}

TEST(Queueing, MonteCarloMatchesFormulaAtFullLoad) {
  sim::Rng rng(17);
  const PeriodicQueueStats s =
      SimulatePeriodicSources(50, 1.0, 400'000, 20, rng);
  // The closed form is a heavy-traffic Brownian-bridge approximation; the
  // slotted Monte Carlo adds ~1 packet of discretization, so check the
  // order of magnitude ("less than 5 with 50 sources" up to that bias).
  EXPECT_NEAR(s.mean_queue, MeanQueueAtFullLoad(50), 2.5);
  EXPECT_LT(s.mean_queue, 5.0 + 2.0);
}

TEST(Queueing, NinetyFivePercentLoadKeepsTinyQueues) {
  // A.1: at 95% load with 50 paced sources the queue is essentially empty —
  // the foundation for eta = 95% achieving "almost zero queue" (§3.3).
  sim::Rng rng(23);
  const PeriodicQueueStats s =
      SimulatePeriodicSources(50, 0.95, 400'000, 20, rng);
  EXPECT_LT(s.mean_queue, 5.0);
  EXPECT_LT(s.prob_above, 1e-4);  // paper: ~1e-9; MC resolution-limited
}

TEST(Queueing, QueueGrowsWithSourceCount) {
  sim::Rng rng(29);
  const PeriodicQueueStats small =
      SimulatePeriodicSources(10, 1.0, 200'000, 20, rng);
  const PeriodicQueueStats large =
      SimulatePeriodicSources(200, 1.0, 200'000, 20, rng);
  EXPECT_LT(small.mean_queue, large.mean_queue);
}

}  // namespace
}  // namespace hpcc::analytic
