// Warm-start equivalence suite: a sweep run with fabric-snapshot sharing and
// warm_start checkpoint/restore enabled must be observably indistinguishable
// from the all-cold run — equal combined trace hashes, byte-identical
// aggregate CSVs and byte-identical per-run manifests — at any worker count,
// including configurations where warm capture is ineligible and every point
// silently falls back to cold (sharded lanes, pre-checkpoint link flaps, a
// non-quiescent checkpoint instant). Covers the committed example scenarios
// and the whole fuzz corpus, plus a purpose-built scenario where the
// checkpoint provably engages (warm_built/warm_restored are asserted, not
// hoped for).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "sim/time.h"

namespace hpcc {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Expands `sc` and injects a checkpoint instant at 40% of each point's
// horizon when the scenario doesn't set one itself. Mutating the parsed
// scenario (not the document) keeps the injected value in both the warm and
// the cold variant, so the manifests' warm_start/snapshot sections stay
// byte-comparable.
std::vector<scenario::ScenarioRun> ExpandWithWarm(const scenario::Scenario& sc) {
  std::vector<scenario::ScenarioRun> runs = scenario::ExpandSweep(sc);
  for (scenario::ScenarioRun& run : runs) {
    if (run.scenario.warm_until == 0) {
      run.scenario.warm_until = run.scenario.config.duration * 2 / 5;
    }
  }
  return runs;
}

struct SweepOutputs {
  uint64_t hash = 0;
  std::string csv_bytes;
  std::vector<std::string> manifest_bytes;
  size_t built = 0;
  size_t restored = 0;
};

// One full sweep under the given warm/jobs/shards configuration, with the
// aggregate CSV and per-run manifests captured as bytes (files are removed
// before returning). Registers failures for run errors.
SweepOutputs RunVariant(const std::vector<scenario::ScenarioRun>& runs,
                        bool warm, int jobs, int shards,
                        const std::string& tag) {
  scenario::ScenarioRunnerOptions opts;
  opts.jobs = jobs;
  opts.warm = warm;
  opts.shards_override = shards;
  opts.manifest = true;
  opts.out_base = tag;
  const std::vector<scenario::SweepRunResult> results =
      scenario::ScenarioRunner(opts).RunAll(runs);

  SweepOutputs out;
  out.hash = scenario::ScenarioRunner::CombinedTraceHash(results);
  const std::string csv = tag + ".csv";
  EXPECT_TRUE(scenario::ScenarioRunner::WriteCsv(csv, results));
  out.csv_bytes = ReadFile(csv);
  EXPECT_FALSE(out.csv_bytes.empty());
  std::remove(csv.c_str());
  for (const scenario::SweepRunResult& r : results) {
    EXPECT_TRUE(r.error.empty()) << r.label << ": " << r.error;
    EXPECT_FALSE(r.manifest_path.empty()) << r.label;
    out.manifest_bytes.push_back(ReadFile(r.manifest_path));
    EXPECT_FALSE(out.manifest_bytes.back().empty()) << r.manifest_path;
    std::remove(r.manifest_path.c_str());
    out.built += r.warm_built ? 1 : 0;
    out.restored += r.warm_restored ? 1 : 0;
  }
  return out;
}

void ExpectSameOutputs(const SweepOutputs& cold, const SweepOutputs& other) {
  EXPECT_EQ(other.hash, cold.hash);
  EXPECT_EQ(other.csv_bytes, cold.csv_bytes);
  ASSERT_EQ(other.manifest_bytes.size(), cold.manifest_bytes.size());
  for (size_t i = 0; i < other.manifest_bytes.size(); ++i) {
    EXPECT_EQ(other.manifest_bytes[i], cold.manifest_bytes[i]) << "run " << i;
  }
}

// Cold baseline vs warm at jobs {1, 4} vs warm on 4 execution lanes (where
// checkpointing is ineligible and only the fabric snapshot is shared): all
// four must produce the same bytes.
void ExpectWarmEquivalence(const std::vector<scenario::ScenarioRun>& runs,
                           const std::string& tag) {
  const SweepOutputs cold = RunVariant(runs, /*warm=*/false, 1, 0,
                                       tag + "_cold");
  {
    SCOPED_TRACE("warm jobs=1");
    ExpectSameOutputs(cold, RunVariant(runs, true, 1, 0, tag + "_w1"));
  }
  {
    SCOPED_TRACE("warm jobs=4");
    ExpectSameOutputs(cold, RunVariant(runs, true, 4, 0, tag + "_w4"));
  }
  {
    SCOPED_TRACE("warm shards=4 (cold fallback)");
    const SweepOutputs sharded = RunVariant(runs, true, 1, 4, tag + "_ws4");
    EXPECT_EQ(sharded.built, 0u);
    EXPECT_EQ(sharded.restored, 0u);
    ExpectSameOutputs(cold, sharded);
  }
}

void ExpectWarmEquivalenceFile(const std::string& path,
                               const std::string& tag) {
  SCOPED_TRACE(path);
  const scenario::Scenario sc = scenario::LoadScenarioFile(path);
  const std::vector<scenario::ScenarioRun> runs = ExpandWithWarm(sc);
  ASSERT_FALSE(runs.empty());
  ExpectWarmEquivalence(runs, tag);
}

TEST(WarmStart, Fig11LoadSweep) {
  ExpectWarmEquivalenceFile(std::string(HPCC_SOURCE_DIR) +
                                "/examples/scenarios/fig11_load_sweep.json",
                            "warm_eq_fig11");
}

TEST(WarmStart, Fig13LinkFailure) {
  // The trunk flap lands before the injected checkpoint instant, so warm
  // capture must refuse and every point runs cold (with the fabric snapshot
  // still shared) — bytes must not move.
  ExpectWarmEquivalenceFile(std::string(HPCC_SOURCE_DIR) +
                                "/examples/scenarios/fig13_link_failure.json",
                            "warm_eq_fig13");
}

TEST(WarmStart, Fattree16HadoopBurst) {
  // The 512-way incast is still draining at the checkpoint instant: the
  // quiescence gate must reject the capture and fall back cold.
  ExpectWarmEquivalenceFile(
      std::string(HPCC_SOURCE_DIR) +
          "/examples/scenarios/fattree16_hadoop_burst.json",
      "warm_eq_ft16");
}

TEST(WarmStart, Fattree32Websearch) {
  ExpectWarmEquivalenceFile(
      std::string(HPCC_SOURCE_DIR) +
          "/examples/scenarios/fattree32_websearch.json",
      "warm_eq_ft32");
}

TEST(WarmStart, Corpus) {
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::string(HPCC_SOURCE_DIR) + "/tests/corpus")) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());
  for (size_t i = 0; i < files.size(); ++i) {
    ExpectWarmEquivalenceFile(files[i],
                              "warm_eq_corpus" + std::to_string(i));
  }
}

// A scenario shaped so the checkpoint provably engages: background load that
// a zero-load phase shuts off early (all flows complete well before the
// checkpoint instant), then a post-checkpoint incast burst whose parameters
// are the sweep axis. Every grid point shares one WarmFingerprint, so the
// first run captures and all others restore.
std::vector<scenario::ScenarioRun> WarmEngagedRuns() {
  const char* doc = R"({
    "name": "warm_engaged",
    "topology": {"kind": "dumbbell", "hosts_per_side": 4,
                  "host_gbps": 100, "trunk_gbps": 400},
    "cc": {"scheme": "hpcc"},
    "workload": {"load": 0.3, "trace": "websearch", "max_flows": 30},
    "duration_ms": 0.5,
    "seed": 3,
    "events": [
      {"type": "load_phase", "at_us": 80, "load": 0.0},
      {"type": "incast", "at_us": 420, "fan_in": 4, "flow_bytes": 100000}
    ],
    "warm_start": {"until_us": 400}
  })";
  const scenario::Scenario base = scenario::ParseScenarioText(doc);
  // Post-checkpoint sweep axis, built programmatically: grid points differ
  // only in the burst's fan-in and size, which the fingerprint reduces to a
  // bare type marker.
  std::vector<scenario::ScenarioRun> runs;
  for (int i = 0; i < 4; ++i) {
    scenario::ScenarioRun run;
    run.scenario = base;
    run.scenario.events[1].incast.fan_in = 2 + (i % 3);
    run.scenario.events[1].incast.flow_bytes =
        50'000 + static_cast<uint64_t>(i) * 25'000;
    run.label = "warm_engaged[burst=" + std::to_string(i) + "]";
    run.params.emplace_back("burst", std::to_string(i));
    runs.push_back(std::move(run));
  }
  return runs;
}

TEST(WarmStart, CheckpointEngagesAndMatchesCold) {
  const std::vector<scenario::ScenarioRun> runs = WarmEngagedRuns();
  ASSERT_EQ(runs.size(), 4u);
  const uint64_t fp = scenario::WarmFingerprint(runs[0].scenario);
  for (const scenario::ScenarioRun& run : runs) {
    EXPECT_EQ(scenario::WarmFingerprint(run.scenario), fp) << run.label;
  }

  const SweepOutputs cold =
      RunVariant(runs, /*warm=*/false, 1, 0, "warm_engaged_cold");
  EXPECT_EQ(cold.built, 0u);
  EXPECT_EQ(cold.restored, 0u);

  const SweepOutputs warm =
      RunVariant(runs, /*warm=*/true, 1, 0, "warm_engaged_w1");
  // Exactly one point builds the checkpoint; every other point restores it.
  EXPECT_EQ(warm.built, 1u);
  EXPECT_EQ(warm.restored, runs.size() - 1);
  ExpectSameOutputs(cold, warm);

  const SweepOutputs warm4 =
      RunVariant(runs, /*warm=*/true, 4, 0, "warm_engaged_w4");
  EXPECT_EQ(warm4.built, 1u);
  EXPECT_EQ(warm4.restored, runs.size() - 1);
  ExpectSameOutputs(cold, warm4);
}

// The committed warm-sweep showcase must expand through the array-indexing
// sweep axis ("events.1.fan_in") into 8 points that all share one warm
// fingerprint — i.e. the scenario file really is warm-shareable as written.
// Expansion only; the k=32 simulation itself is covered by the macro bench.
TEST(WarmStart, Fattree32WarmSweepExampleSharesOneFingerprint) {
  const scenario::Scenario sc = scenario::LoadScenarioFile(
      std::string(HPCC_SOURCE_DIR) +
      "/examples/scenarios/fattree32_warm_sweep.json");
  EXPECT_EQ(sc.warm_until, sim::Us(1400));
  const std::vector<scenario::ScenarioRun> runs = scenario::ExpandSweep(sc);
  ASSERT_EQ(runs.size(), 8u);
  const uint64_t fp = scenario::WarmFingerprint(runs[0].scenario);
  const uint64_t fab = scenario::FabricSignature(runs[0].scenario);
  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].scenario.events[1].incast.fan_in,
              4 + 2 * static_cast<int>(i))
        << runs[i].label;
    EXPECT_EQ(scenario::WarmFingerprint(runs[i].scenario), fp)
        << runs[i].label;
    EXPECT_EQ(scenario::FabricSignature(runs[i].scenario), fab)
        << runs[i].label;
  }
}

// The scenario-level schema surface: warm_start round-trips through
// ScenarioToJson, and malformed blocks are rejected loudly.
TEST(WarmStart, SchemaRoundTripAndValidation) {
  const char* doc = R"({
    "name": "warm_schema",
    "topology": {"kind": "star", "hosts": 4},
    "cc": {"scheme": "hpcc"},
    "workload": {"load": 0.2, "trace": "websearch", "max_flows": 5},
    "duration_ms": 0.2,
    "warm_start": {"until_us": 120}
  })";
  const scenario::Scenario sc = scenario::ParseScenarioText(doc);
  EXPECT_EQ(sc.warm_until, sim::Us(120));
  const scenario::Scenario round =
      scenario::ParseScenario(scenario::ScenarioToJson(sc));
  EXPECT_EQ(round.warm_until, sim::Us(120));
  EXPECT_EQ(scenario::ScenarioToJson(round).Dump(),
            scenario::ScenarioToJson(sc).Dump());

  EXPECT_THROW(scenario::ParseScenarioText(R"({
    "name": "bad", "topology": {"kind": "star", "hosts": 4},
    "cc": {"scheme": "hpcc"},
    "workload": {"load": 0.2, "trace": "websearch", "max_flows": 5},
    "duration_ms": 0.2, "warm_start": {"until_us": 0}
  })"),
               scenario::ScenarioError);
  EXPECT_THROW(scenario::ParseScenarioText(R"({
    "name": "bad", "topology": {"kind": "star", "hosts": 4},
    "cc": {"scheme": "hpcc"},
    "workload": {"load": 0.2, "trace": "websearch", "max_flows": 5},
    "duration_ms": 0.2, "warm_start": {"until_ms": 1}
  })"),
               scenario::ScenarioError);
}

// Fingerprint semantics: post-checkpoint event *parameters* don't split the
// cache key, but their count/order does (install-time schedule draws), and
// pre-checkpoint parameters always do.
TEST(WarmStart, FingerprintSkeletonizesPostCheckpointEvents) {
  const std::vector<scenario::ScenarioRun> runs = WarmEngagedRuns();
  scenario::Scenario a = runs[0].scenario;

  // Moving the post-T burst's time (still >= T) keeps the fingerprint.
  scenario::Scenario b = a;
  b.events[1].at = sim::Us(460);
  EXPECT_EQ(scenario::WarmFingerprint(a), scenario::WarmFingerprint(b));

  // Moving it before T exposes its full parameters.
  scenario::Scenario c = a;
  c.events[1].at = sim::Us(100);
  EXPECT_NE(scenario::WarmFingerprint(a), scenario::WarmFingerprint(c));

  // Dropping a post-T event changes the install-time draw pattern.
  scenario::Scenario d = a;
  d.events.pop_back();
  EXPECT_NE(scenario::WarmFingerprint(a), scenario::WarmFingerprint(d));

  // Load phases stay verbatim wherever they sit: a post-T phase time bounds
  // the previous generation window.
  scenario::Scenario e = a;
  e.events[0].load = 0.1;
  EXPECT_NE(scenario::WarmFingerprint(a), scenario::WarmFingerprint(e));

  // The fabric key ignores everything but the topology block.
  EXPECT_EQ(scenario::FabricSignature(a), scenario::FabricSignature(b));
  scenario::Scenario f = a;
  f.config.dumbbell.hosts_per_side = 6;
  EXPECT_NE(scenario::FabricSignature(a), scenario::FabricSignature(f));
}

}  // namespace
}  // namespace hpcc
