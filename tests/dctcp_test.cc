// Unit tests for the DCTCP baseline.
#include <gtest/gtest.h>

#include "cc/dctcp.h"
#include "sim/time.h"

namespace hpcc::cc {
namespace {

constexpr int64_t kNic = 10'000'000'000;
constexpr sim::TimePs kT = sim::Us(13);
const int64_t kBdp = kNic / 8 * 13 / 1'000'000;  // 16250 bytes

CcContext Ctx() {
  CcContext ctx;
  ctx.nic_bps = kNic;
  ctx.base_rtt = kT;
  ctx.mtu_bytes = 1000;
  return ctx;
}

AckInfo Ack(uint64_t ack_seq, uint64_t snd_nxt, int64_t acked, bool mark) {
  AckInfo a;
  a.ack_seq = ack_seq;
  a.snd_nxt = snd_nxt;
  a.newly_acked = acked;
  a.ecn_echo = mark;
  return a;
}

TEST(Dctcp, StartsAtBdpWindow) {
  DctcpCc cc(Ctx(), DctcpParams{});
  EXPECT_EQ(cc.window_bytes(), kBdp);
  EXPECT_DOUBLE_EQ(cc.alpha(), 0.0);
}

TEST(Dctcp, UnmarkedEpochGrowsByMss) {
  DctcpCc cc(Ctx(), DctcpParams{});
  const int64_t w0 = cc.window_bytes();
  // First ACK opens the epoch ending at snd_nxt=16000.
  cc.OnAck(Ack(1000, 16'000, 1000, false));
  // Crossing the epoch boundary closes it.
  cc.OnAck(Ack(16'000, 32'000, 15'000, false));
  EXPECT_EQ(cc.window_bytes(), std::min<int64_t>(w0 + 1000, kBdp));
}

TEST(Dctcp, MarkedEpochShrinksWindowByAlphaHalf) {
  DctcpParams p;
  DctcpCc cc(Ctx(), p);
  const double w0 = static_cast<double>(cc.window_bytes());
  // Epoch 1 fully marked: alpha = g, W *= (1 - g/2).
  cc.OnAck(Ack(1'000, 16'000, 1'000, true));
  cc.OnAck(Ack(16'000, 32'000, 15'000, true));
  EXPECT_NEAR(cc.alpha(), p.g, 1e-12);
  EXPECT_NEAR(static_cast<double>(cc.window_bytes()),
              w0 * (1.0 - p.g / 2.0), 2.0);
  // Epoch 2 fully marked: alpha = (1-g)g + g, another multiplicative cut.
  const double w1 = static_cast<double>(cc.window_bytes());
  cc.OnAck(Ack(32'000, 48'000, 16'000, true));
  const double expected_alpha = (1.0 - p.g) * p.g + p.g;
  EXPECT_NEAR(cc.alpha(), expected_alpha, 1e-12);
  EXPECT_NEAR(static_cast<double>(cc.window_bytes()),
              w1 * (1.0 - expected_alpha / 2.0), 2.0);
}

TEST(Dctcp, PersistentMarkingDrivesAlphaToOne) {
  DctcpCc cc(Ctx(), DctcpParams{});
  uint64_t seq = 0;
  for (int epoch = 0; epoch < 80; ++epoch) {
    cc.OnAck(Ack(seq + 16'000, seq + 32'000, 16'000, true));
    seq += 16'000;
  }
  EXPECT_GT(cc.alpha(), 0.95);
  EXPECT_GE(cc.window_bytes(), 1000);  // floored, still sending
}

TEST(Dctcp, AlphaTracksMarkedFraction) {
  DctcpParams p;
  DctcpCc cc(Ctx(), p);
  uint64_t seq = 0;
  // Half the bytes of each epoch marked.
  for (int epoch = 0; epoch < 200; ++epoch) {
    cc.OnAck(Ack(seq + 8'000, seq + 16'000, 8'000, true));
    cc.OnAck(Ack(seq + 16'000, seq + 32'000, 8'000, false));
    seq += 16'000;
  }
  EXPECT_NEAR(cc.alpha(), 0.5, 0.05);
}

TEST(Dctcp, WindowFloorIsOneMss) {
  DctcpCc cc(Ctx(), DctcpParams{});
  uint64_t seq = 0;
  for (int epoch = 0; epoch < 500; ++epoch) {
    cc.OnAck(Ack(seq + 16'000, seq + 32'000, 16'000, true));
    seq += 16'000;
  }
  EXPECT_GE(cc.window_bytes(), 1000);
}

TEST(Dctcp, WindowCapAtBdp) {
  DctcpCc cc(Ctx(), DctcpParams{});
  uint64_t seq = 0;
  for (int epoch = 0; epoch < 100; ++epoch) {
    cc.OnAck(Ack(seq + 16'000, seq + 32'000, 16'000, false));
    seq += 16'000;
  }
  EXPECT_LE(cc.window_bytes(), kBdp);
}

TEST(Dctcp, PacesAtWindowOverRtt) {
  DctcpCc cc(Ctx(), DctcpParams{});
  // W = BDP -> rate = line.
  EXPECT_NEAR(static_cast<double>(cc.rate_bps()),
              static_cast<double>(kNic), kNic * 0.001);
  EXPECT_TRUE(cc.wants_ecn());
  EXPECT_FALSE(cc.wants_int());
}

}  // namespace
}  // namespace hpcc::cc
