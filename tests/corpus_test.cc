// Fuzz regression corpus: every scenario committed under tests/corpus/ runs
// under the full invariant-monitor set and must finish violation-free and
// deterministically. CMake also registers one ctest case per corpus file
// (corpus_<name>), selected via the HPCC_CORPUS_FILE environment variable;
// without it this binary sweeps the whole directory.
//
// Corpus policy (docs/TESTING.md): files are frozen fuzzer outputs — add a
// file when a fuzz run finds a bug (commit the reproducer with the fix) or
// when a new feature's scenario space deserves a pin; never edit one in
// place, since the value of a reproducer is that it stays bit-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "scenario/scenario.h"

namespace hpcc::check {
namespace {

std::vector<std::string> CorpusFiles() {
  if (const char* one = std::getenv("HPCC_CORPUS_FILE")) {
    return {one};
  }
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(HPCC_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Corpus, ScenariosRunCleanUnderAllMonitors) {
  const std::vector<std::string> files = CorpusFiles();
  ASSERT_FALSE(files.empty()) << "no corpus files found under "
                              << HPCC_CORPUS_DIR;
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    const scenario::Scenario s = scenario::LoadScenarioFile(path);
    const FuzzRunReport rep = RunScenarioDocChecked(s.source, 50'000'000);
    ASSERT_TRUE(rep.error.empty()) << rep.error;
    EXPECT_EQ(rep.violation_count, 0u)
        << rep.violations.front().Format();
    EXPECT_GT(rep.flows_created, 0u);

    // Replay determinism: a corpus file is also a golden-trace pin.
    const FuzzRunReport again = RunScenarioDocChecked(s.source, 50'000'000);
    EXPECT_EQ(again.trace_hash, rep.trace_hash);
  }
}

}  // namespace
}  // namespace hpcc::check
