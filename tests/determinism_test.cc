// Determinism regression: the committed fig11 load sweep must produce
// byte-identical CSV output and equal golden-trace hashes for --jobs=1 and
// --jobs=4. This pins the ScenarioRunner contract (results keyed by grid
// index, nothing shared between workers) that PR 2's pooled hot path and the
// fuzzer's determinism checks both rely on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace hpcc::scenario {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Determinism, Fig11LoadSweepIdenticalAcrossJobs) {
  const std::string path =
      std::string(HPCC_SOURCE_DIR) + "/examples/scenarios/fig11_load_sweep.json";
  const Scenario sc = LoadScenarioFile(path);
  const std::vector<ScenarioRun> runs = ExpandSweep(sc);
  ASSERT_GT(runs.size(), 1u);

  ScenarioRunnerOptions o1;
  o1.jobs = 1;
  ScenarioRunnerOptions o4;
  o4.jobs = 4;
  const auto r1 = ScenarioRunner(o1).RunAll(runs);
  const auto r4 = ScenarioRunner(o4).RunAll(runs);
  ASSERT_EQ(r1.size(), runs.size());
  ASSERT_EQ(r4.size(), runs.size());

  for (size_t i = 0; i < r1.size(); ++i) {
    SCOPED_TRACE(r1[i].label);
    ASSERT_TRUE(r1[i].error.empty()) << r1[i].error;
    ASSERT_TRUE(r4[i].error.empty()) << r4[i].error;
    EXPECT_EQ(r1[i].result.trace_hash, r4[i].result.trace_hash);
  }
  EXPECT_NE(ScenarioRunner::CombinedTraceHash(r1), 0u);
  EXPECT_EQ(ScenarioRunner::CombinedTraceHash(r1),
            ScenarioRunner::CombinedTraceHash(r4));

  // Byte-level pin: the aggregated CSVs must be identical files.
  const std::string f1 = "determinism_jobs1.csv";
  const std::string f4 = "determinism_jobs4.csv";
  ASSERT_TRUE(ScenarioRunner::WriteCsv(f1, r1));
  ASSERT_TRUE(ScenarioRunner::WriteCsv(f4, r4));
  const std::string b1 = ReadFile(f1);
  const std::string b4 = ReadFile(f4);
  EXPECT_FALSE(b1.empty());
  EXPECT_EQ(b1, b4);
  std::remove(f1.c_str());
  std::remove(f4.c_str());
}

}  // namespace
}  // namespace hpcc::scenario
