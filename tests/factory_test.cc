// Tests for the CC factory and scheme capability queries.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cc/factory.h"

namespace hpcc::cc {
namespace {

CcContext Ctx() {
  CcContext ctx;
  ctx.nic_bps = 100'000'000'000;
  ctx.base_rtt = sim::Us(13);
  return ctx;
}

class FactorySchemes : public ::testing::TestWithParam<const char*> {};

TEST_P(FactorySchemes, ConstructsAndReportsCapabilities) {
  CcConfig cfg;
  cfg.scheme = GetParam();
  CcPtr cc = MakeCc(cfg, Ctx());
  ASSERT_NE(cc, nullptr);
  EXPECT_GT(cc->window_bytes(), 0);
  EXPECT_GT(cc->rate_bps(), 0);
  EXPECT_EQ(cc->wants_int(), SchemeUsesInt(cfg.scheme));
  EXPECT_EQ(cc->wants_ecn(), SchemeUsesEcn(cfg.scheme));
}

INSTANTIATE_TEST_SUITE_P(All, FactorySchemes,
                         ::testing::Values("hpcc", "hpcc-rxrate",
                                           "hpcc-perack", "hpcc-perrtt",
                                           "hpcc-alpha", "dcqcn", "dcqcn+win",
                                           "timely", "timely+win", "dctcp",
                                           "rcp", "rcp+win"));

TEST(Factory, UnknownSchemeThrows) {
  CcConfig cfg;
  cfg.scheme = "bbr";
  EXPECT_THROW(MakeCc(cfg, Ctx()), std::invalid_argument);
}

TEST(Factory, SchemeUsesInt) {
  EXPECT_TRUE(SchemeUsesInt("hpcc"));
  EXPECT_TRUE(SchemeUsesInt("hpcc-rxrate"));
  EXPECT_FALSE(SchemeUsesInt("dcqcn"));
  EXPECT_FALSE(SchemeUsesInt("dctcp"));
}

TEST(Factory, SchemeUsesEcn) {
  EXPECT_TRUE(SchemeUsesEcn("dcqcn"));
  EXPECT_TRUE(SchemeUsesEcn("dcqcn+win"));
  EXPECT_TRUE(SchemeUsesEcn("dctcp"));
  EXPECT_FALSE(SchemeUsesEcn("hpcc"));
  EXPECT_FALSE(SchemeUsesEcn("timely"));
}

TEST(Factory, WindowedVariantsHaveFiniteWindow) {
  CcConfig cfg;
  cfg.scheme = "dcqcn+win";
  CcPtr win = MakeCc(cfg, Ctx());
  cfg.scheme = "dcqcn";
  CcPtr plain = MakeCc(cfg, Ctx());
  EXPECT_LT(win->window_bytes(), int64_t{10'000'000});
  EXPECT_GT(plain->window_bytes(), int64_t{1} << 50);
}

TEST(Factory, HpccVariantsApplyParams) {
  CcConfig cfg;
  cfg.scheme = "hpcc";
  cfg.hpcc.eta = 0.9;
  CcPtr cc = MakeCc(cfg, Ctx());
  EXPECT_EQ(cc->name(), "hpcc");
  cfg.scheme = "hpcc-alpha";
  CcPtr af = MakeCc(cfg, Ctx());
  EXPECT_EQ(af->name(), "hpcc-alpha-fair");
}

}  // namespace
}  // namespace hpcc::cc
