// Unit tests for HPCC's Algorithm 1: utilization estimation (Eqn 2), the
// MI/MD + AI control law (Eqn 3/4), the per-RTT reference window that
// prevents the Fig. 5 overreaction, EWMA weighting, noise filters, and the
// ablation reaction modes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/hpcc.h"
#include "sim/time.h"

namespace hpcc::core {
namespace {

constexpr int64_t kNic = 100'000'000'000;        // 100 Gbps
constexpr sim::TimePs kT = sim::Us(13);          // base RTT
const int64_t kWinit = kNic / 8 * 13 / 1'000'000;  // 162500 bytes

cc::CcContext Ctx() {
  cc::CcContext ctx;
  ctx.nic_bps = kNic;
  ctx.base_rtt = kT;
  ctx.mtu_bytes = 1000;
  return ctx;
}

HpccParams Params() {
  HpccParams p;
  p.eta = 0.95;
  p.max_stage = 5;
  p.wai_bytes = 80;
  return p;
}

// Builds an ACK whose single-hop INT stack reports a link running at
// `utilization` (tx rate fraction of B) with the given queue length, `dt`
// after the previous snapshot.
class AckFactory {
 public:
  explicit AckFactory(int64_t link_bps = kNic) : bps_(link_bps) {}

  // Default `acked` stride exceeds the snd_nxt offset so every Next() call
  // crosses the per-RTT update boundary (a fresh round for Algorithm 1).
  cc::AckInfo Next(double tx_utilization, int64_t qlen_bytes, sim::TimePs dt,
                   uint64_t acked = 60'000) {
    ts_ += dt;
    tx_bytes_ += static_cast<uint64_t>(
        tx_utilization * static_cast<double>(bps_) / 8.0 * sim::ToSec(dt));
    stack_.Clear();
    IntHop hop;
    hop.bandwidth_bps = bps_;
    hop.ts = ts_;
    hop.tx_bytes = tx_bytes_;
    hop.qlen_bytes = qlen_bytes;
    hop.switch_id = 1;
    stack_.Push(hop);

    cc::AckInfo info;
    ack_seq_ += acked;
    info.now = ts_;
    info.ack_seq = ack_seq_;
    snd_nxt_ = ack_seq_ + 50'000;  // plenty of inflight
    info.snd_nxt = snd_nxt_;
    info.newly_acked = static_cast<int64_t>(acked);
    info.int_stack = &stack_;
    return info;
  }

  // Same INT snapshot advanced in time but with ack_seq NOT crossing the
  // last update boundary (pass explicit ack_seq).
  cc::AckInfo NextWithSeq(double tx_utilization, int64_t qlen_bytes,
                          sim::TimePs dt, uint64_t ack_seq) {
    cc::AckInfo info = Next(tx_utilization, qlen_bytes, dt);
    info.ack_seq = ack_seq;
    info.snd_nxt = snd_nxt_;
    return info;
  }

  uint64_t last_snd_nxt() const { return snd_nxt_; }

 private:
  int64_t bps_;
  sim::TimePs ts_ = sim::Us(100);
  uint64_t tx_bytes_ = 1'000'000;
  uint64_t ack_seq_ = 0;
  uint64_t snd_nxt_ = 0;
  IntStack stack_;
};

TEST(HpccCc, StartsAtLineRateWindow) {
  HpccCc cc(Ctx(), Params());
  EXPECT_EQ(cc.winit_bytes(), kWinit);
  EXPECT_EQ(cc.window_bytes(), kWinit);
  // R = W/T = line rate.
  EXPECT_NEAR(static_cast<double>(cc.rate_bps()), static_cast<double>(kNic),
              static_cast<double>(kNic) * 1e-6);
}

TEST(HpccCc, WaiRuleOfThumbWhenUnset) {
  HpccParams p = Params();
  p.wai_bytes = -1;
  p.expected_flows = 100;
  HpccCc cc(Ctx(), p);
  // W_AI = Winit (1-eta) / N  ~ 162500*0.05/100 ~ 81 bytes (§3.3 / §5.1).
  EXPECT_NEAR(cc.wai_bytes(), 81.25, 0.1);
}

TEST(HpccCc, FirstAckOnlyPrimesState) {
  HpccCc cc(Ctx(), Params());
  AckFactory f;
  cc.OnAck(f.Next(5.0, 1'000'000, sim::Us(13)));  // absurd load: ignored
  EXPECT_EQ(cc.window_bytes(), kWinit);           // no reaction yet
}

TEST(HpccCc, MultiplicativeDecreaseTowardEta) {
  HpccCc cc(Ctx(), Params());
  AckFactory f;
  cc.OnAck(f.Next(1.0, 0, kT));
  // Second ACK: link fully utilized over a full RTT, no queue: U ~ 1.0.
  cc.OnAck(f.Next(1.0, 0, kT));
  EXPECT_NEAR(cc.utilization_estimate(), 1.0, 1e-9);
  // W = Wc/(U/eta) + WAI = 0.95*Winit + 80.
  EXPECT_NEAR(cc.window_raw(), 0.95 * kWinit + 80, 1.0);
}

TEST(HpccCc, QueueContributesToUtilization) {
  HpccCc cc(Ctx(), Params());
  AckFactory f;
  const int64_t q = kWinit / 2;  // half a BDP of standing queue
  cc.OnAck(f.Next(1.0, q, kT));
  cc.OnAck(f.Next(1.0, q, kT));
  // U = qlen/(B*T) + tx/B = 0.5 + 1.0.
  EXPECT_NEAR(cc.utilization_estimate(), 1.5, 0.01);
  EXPECT_NEAR(cc.window_raw(), 0.95 / 1.5 * kWinit + 80, kWinit * 0.01);
}

TEST(HpccCc, AdditiveIncreaseForMaxStageRounds) {
  HpccParams p = Params();
  HpccCc cc(Ctx(), p);
  AckFactory f;
  cc.OnAck(f.Next(1.5, 0, kT));  // prime
  cc.OnAck(f.Next(1.5, 0, kT));  // MD pulls W below Winit so AI is visible
  ASSERT_LT(cc.window_raw(), 0.8 * kWinit);
  // Now feed an underutilized link: maxStage rounds of AI.
  cc.OnAck(f.Next(0.5, 0, kT));
  ASSERT_EQ(cc.inc_stage(), 1);
  const double w0 = cc.window_raw();
  for (int stage = 2; stage <= p.max_stage; ++stage) {
    cc.OnAck(f.Next(0.5, 0, kT));
    EXPECT_EQ(cc.inc_stage(), stage);
    EXPECT_NEAR(cc.window_raw(), w0 + (stage - 1) * 80.0, 1e-6) << stage;
  }
  // Next new round: incStage == maxStage -> multiplicative probe upward.
  cc.OnAck(f.Next(0.5, 0, kT));
  EXPECT_EQ(cc.inc_stage(), 0);
  EXPECT_GT(cc.window_raw(), (w0 + 4 * 80.0) * 1.5);  // ~ /(0.5/0.95)
}

TEST(HpccCc, MiRampCappedAtWinit) {
  HpccCc cc(Ctx(), Params());
  AckFactory f;
  cc.OnAck(f.Next(0.1, 0, kT));
  for (int i = 0; i < 20; ++i) cc.OnAck(f.Next(0.1, 0, kT));
  EXPECT_LE(cc.window_bytes(), kWinit);
  EXPECT_EQ(cc.window_bytes(), kWinit);  // nearly idle link -> back to line
}

// The Fig. 5 scenario: repeated ACKs describing the same queue within one
// RTT are all computed from the same reference window W^c, so the window
// does not compound downward per ACK.
TEST(HpccCc, NoOverreactionWithinOneRtt) {
  HpccCc cc(Ctx(), Params());
  AckFactory f;
  cc.OnAck(f.Next(2.0, 0, kT));  // prime
  cc.OnAck(f.Next(2.0, 0, kT));  // new round: W ~ Wc/2.1, Wc re-synced
  // A first mid-round ACK re-bases W on the fresh reference once...
  cc.OnAck(f.NextWithSeq(2.0, 0, sim::Us(1), 1));
  const double w_mid = cc.window_raw();
  // ...but further same-information mid-round ACKs leave W put: no W/4, W/8
  // death spiral (the Fig. 5 overreaction).
  for (int i = 0; i < 5; ++i) {
    cc.OnAck(f.NextWithSeq(2.0, 0, sim::Us(1), 1));
  }
  EXPECT_NEAR(cc.window_raw(), w_mid, w_mid * 0.05);
}

TEST(HpccCc, PerAckModeOverreacts) {
  HpccParams p = Params();
  p.reaction = ReactionMode::kPerAck;
  HpccCc cc(Ctx(), p);
  AckFactory f;
  cc.OnAck(f.Next(2.0, 0, kT));
  cc.OnAck(f.Next(2.0, 0, kT));
  const double w1 = cc.window_raw();
  cc.OnAck(f.NextWithSeq(2.0, 0, sim::Us(1), 1));  // same data, same round
  // Blind per-ACK reaction compounds the decrease (Fig. 5's W/4 effect).
  EXPECT_LT(cc.window_raw(), w1 * 0.75);
}

TEST(HpccCc, PerRttModeIgnoresMidRoundAcks) {
  HpccParams p = Params();
  p.reaction = ReactionMode::kPerRtt;
  HpccCc cc(Ctx(), p);
  AckFactory f;
  cc.OnAck(f.Next(1.0, 0, kT));
  cc.OnAck(f.Next(2.0, 0, kT));
  const double w1 = cc.window_raw();
  // Mid-round ACK with drastic new information: ignored entirely.
  cc.OnAck(f.NextWithSeq(8.0, kWinit, sim::Us(1), 1));
  EXPECT_DOUBLE_EQ(cc.window_raw(), w1);
}

TEST(HpccCc, HpccModeStillReactsMidRoundWhenUtilizationChanges) {
  HpccCc cc(Ctx(), Params());
  AckFactory f;
  cc.OnAck(f.Next(1.0, 0, kT));
  cc.OnAck(f.Next(1.0, 0, kT));
  const double w1 = cc.window_raw();
  // Mid-round ACK reporting a much bigger queue: window shrinks (from the
  // same Wc) because U jumped — fast reaction without overreaction (§3.2).
  cc.OnAck(f.NextWithSeq(3.0, kWinit, sim::Us(6), 1));
  EXPECT_LT(cc.window_raw(), w1 * 0.9);
}

TEST(HpccCc, EwmaWeightsScaleWithGap) {
  // A sample arriving after a tiny gap should barely move U; a full-RTT gap
  // replaces it (line 9's tau/T weighting).
  HpccCc cc(Ctx(), Params());
  AckFactory f;
  cc.OnAck(f.Next(1.0, 0, kT));
  cc.OnAck(f.Next(1.0, 0, kT));
  const double u1 = cc.utilization_estimate();
  cc.OnAck(f.Next(0.0, 0, sim::Us(1)));  // near-idle sample, tiny tau
  EXPECT_GT(cc.utilization_estimate(), u1 * 0.85);
  cc.OnAck(f.Next(0.0, 0, kT));  // idle sample across a full RTT
  EXPECT_LT(cc.utilization_estimate(), u1 * 0.15);
}

TEST(HpccCc, MinQlenFilterSuppressesTransientSpike) {
  HpccCc with_filter(Ctx(), Params());
  HpccParams p = Params();
  p.use_min_qlen_filter = false;
  HpccCc no_filter(Ctx(), p);
  for (HpccCc* cc : {&with_filter, &no_filter}) {
    AckFactory f;
    cc->OnAck(f.Next(0.9, 0, kT));
    cc->OnAck(f.Next(0.9, 0, kT));
    // One-ACK queue spike: last qlen was 0, current is large.
    cc->OnAck(f.Next(0.9, kWinit, kT));
  }
  // min(qlen, last.qlen) = 0 with the filter -> lower U estimate.
  EXPECT_LT(with_filter.utilization_estimate(),
            no_filter.utilization_estimate() - 0.5);
}

TEST(HpccCc, PathChangeResetsState) {
  HpccCc cc(Ctx(), Params());
  AckFactory f;
  cc.OnAck(f.Next(2.0, 0, kT));
  cc.OnAck(f.Next(2.0, 0, kT));
  const double w1 = cc.window_raw();

  // New path: different switch id -> path_id mismatch. The ACK only
  // re-primes the link records; the window must not react to the bogus
  // txBytes delta across different switches.
  IntStack other;
  IntHop hop;
  hop.bandwidth_bps = kNic;
  hop.ts = sim::Us(500);
  hop.tx_bytes = 5;  // wildly different counter base
  hop.qlen_bytes = 0;
  hop.switch_id = 2;
  other.Push(hop);
  cc::AckInfo info;
  info.ack_seq = 1'000'000;
  info.snd_nxt = 1'050'000;
  info.int_stack = &other;
  cc.OnAck(info);
  EXPECT_DOUBLE_EQ(cc.window_raw(), w1);
}

TEST(HpccCc, MostCongestedLinkDominates) {
  HpccCc cc(Ctx(), Params());
  // Two-hop path: hop0 idle, hop1 congested.
  auto make = [](sim::TimePs ts, uint64_t tx0, uint64_t tx1, int64_t q1) {
    IntStack s;
    IntHop h0;
    h0.bandwidth_bps = kNic;
    h0.ts = ts;
    h0.tx_bytes = tx0;
    h0.qlen_bytes = 0;
    h0.switch_id = 1;
    s.Push(h0);
    IntHop h1 = h0;
    h1.tx_bytes = tx1;
    h1.qlen_bytes = q1;
    h1.switch_id = 2;
    s.Push(h1);
    return s;
  };
  const uint64_t full = static_cast<uint64_t>(kWinit);  // B*T bytes
  // Prime with the same queue occupancy so the min-qlen filter keeps it.
  IntStack s1 = make(sim::Us(100), 0, 0, static_cast<int64_t>(full / 2));
  IntStack s2 = make(sim::Us(100) + kT, full / 10, full, full / 2);
  cc::AckInfo a1;
  a1.ack_seq = 1000;
  a1.snd_nxt = 2000;
  a1.int_stack = &s1;
  cc.OnAck(a1);
  cc::AckInfo a2;
  a2.ack_seq = 3000;
  a2.snd_nxt = 4000;
  a2.int_stack = &s2;
  cc.OnAck(a2);
  // max_j U_j = hop1's 1.0 + 0.5 = 1.5, not hop0's 0.1.
  EXPECT_NEAR(cc.utilization_estimate(), 1.5, 0.01);
}

TEST(HpccCc, RxRateModeSeesArrivalRate) {
  HpccParams p = Params();
  p.rate_signal = RateSignal::kRxRate;
  HpccCc rx(Ctx(), p);
  HpccCc tx(Ctx(), Params());
  // Queue grows by a BDP over one RTT while txRate = B: arrival rate is 2B.
  for (HpccCc* cc : {&rx, &tx}) {
    AckFactory f;
    cc->OnAck(f.Next(1.0, 0, kT));
    cc->OnAck(f.Next(1.0, static_cast<int64_t>(kWinit), kT));
  }
  // tx mode: U = min(0,q)/BT + 1 = 1. rx mode: U = 0 + (1 + 1) = 2.
  EXPECT_NEAR(tx.utilization_estimate(), 1.0, 0.02);
  EXPECT_NEAR(rx.utilization_estimate(), 2.0, 0.05);
}

TEST(HpccCc, DivTableModeTracksExactDivision) {
  HpccParams p = Params();
  p.use_div_table = true;
  HpccCc approx(Ctx(), p);
  HpccCc exact(Ctx(), Params());
  AckFactory fa;
  AckFactory fb;
  for (int i = 0; i < 10; ++i) {
    const double u = 0.6 + 0.3 * ((i * 7) % 5);
    approx.OnAck(fa.Next(u, i * 997, kT));
    exact.OnAck(fb.Next(u, i * 997, kT));
  }
  EXPECT_NEAR(approx.window_raw(), exact.window_raw(),
              exact.window_raw() * 0.02);
}

TEST(HpccCc, WindowNeverBelowOneByte) {
  HpccCc cc(Ctx(), Params());
  AckFactory f;
  cc.OnAck(f.Next(1.0, 0, kT));
  for (int i = 0; i < 50; ++i) {
    cc.OnAck(f.Next(50.0, 10 * kWinit, kT));  // catastrophic congestion
  }
  EXPECT_GE(cc.window_bytes(), 1);
  EXPECT_GT(cc.rate_bps(), 0);
}

TEST(HpccCc, AcksWithoutIntAreIgnored) {
  HpccCc cc(Ctx(), Params());
  cc::AckInfo info;
  info.ack_seq = 100;
  info.snd_nxt = 200;
  info.int_stack = nullptr;
  cc.OnAck(info);
  EXPECT_EQ(cc.window_bytes(), kWinit);
}

TEST(HpccCc, WantsIntNotEcn) {
  HpccCc cc(Ctx(), Params());
  EXPECT_TRUE(cc.wants_int());
  EXPECT_FALSE(cc.wants_ecn());
  EXPECT_EQ(cc.name(), "hpcc");
}

// Property sweep over eta: steady full utilization must always converge the
// window to eta * BDP + WAI within a few rounds.
class HpccEtaSweep : public ::testing::TestWithParam<double> {};

TEST_P(HpccEtaSweep, ConvergesToEtaBdp) {
  HpccParams p = Params();
  p.eta = GetParam();
  HpccCc cc(Ctx(), p);
  AckFactory f;
  cc.OnAck(f.Next(1.0, 0, kT));
  double w = 0;
  for (int i = 0; i < 30; ++i) {
    // Feed back the utilization the *current* window would produce.
    w = cc.window_raw();
    const double u = w / static_cast<double>(kWinit);
    cc.OnAck(f.Next(u, 0, kT));
  }
  EXPECT_NEAR(cc.window_raw() / static_cast<double>(kWinit), p.eta, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Etas, HpccEtaSweep,
                         ::testing::Values(0.90, 0.92, 0.95, 0.98));

}  // namespace
}  // namespace hpcc::core
