// Tests for RDMA READ (§4.2): requester-initiated transfers where the
// responder does the sending.
#include <gtest/gtest.h>

#include "runner/experiment.h"

namespace hpcc::runner {
namespace {

ExperimentConfig StarCfg(int hosts, const char* scheme = "hpcc") {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kStar;
  cfg.star.num_hosts = hosts;
  cfg.cc.scheme = scheme;
  return cfg;
}

TEST(RdmaRead, CompletesAndDeliversAllBytes) {
  Experiment e(StarCfg(2));
  const auto& h = e.hosts();
  host::Flow* f = e.AddReadFlow(/*requester=*/h[0], /*responder=*/h[1],
                                1'000'000, 0);
  e.RunUntil(sim::Ms(10));
  ASSERT_TRUE(f->done);
  // Data flowed responder -> requester.
  EXPECT_EQ(f->spec().src, h[1]);
  EXPECT_EQ(f->spec().dst, h[0]);
  const auto* rx = e.topology().host(h[0]).FindRxState(f->spec().id);
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->rcv_nxt, 1'000'000u);
}

TEST(RdmaRead, DoesNotStartBeforeRequestArrives) {
  Experiment e(StarCfg(2));
  const auto& h = e.hosts();
  host::Flow* f = e.AddReadFlow(h[0], h[1], 100'000, sim::Us(500));
  e.RunUntil(sim::Us(499));
  EXPECT_FALSE(f->started);
  EXPECT_EQ(e.topology().host(h[1]).data_packets_sent(), 0u);
  // The request needs ~half an RTT to cross the fabric.
  e.RunUntil(sim::Us(500) + e.base_rtt());
  EXPECT_TRUE(f->started);
}

TEST(RdmaRead, FctIncludesRequestPropagation) {
  // Disjoint host pairs so the two transfers do not contend.
  Experiment e(StarCfg(5));
  const auto& h = e.hosts();
  host::Flow* write = e.AddFlow(h[1], h[2], 500'000, 0);
  host::Flow* read = e.AddReadFlow(h[3], h[4], 500'000, 0);
  e.RunUntil(sim::Ms(10));
  ASSERT_TRUE(write->done);
  ASSERT_TRUE(read->done);
  const sim::TimePs write_fct = write->finish_time - write->spec().start_time;
  const sim::TimePs read_fct = read->finish_time - read->spec().start_time;
  // READ pays the extra one-way request trip.
  EXPECT_GT(read_fct, write_fct);
  EXPECT_LT(read_fct, write_fct + e.base_rtt());
}

TEST(RdmaRead, ManyReadsFromOneRequesterFormIncast) {
  // A requester pulling from 8 responders at once creates an incast on its
  // own downlink; HPCC must keep it tame like any other incast.
  Experiment e(StarCfg(9));
  const auto& h = e.hosts();
  std::vector<host::Flow*> reads;
  for (int i = 1; i <= 8; ++i) {
    reads.push_back(e.AddReadFlow(h[0], h[i], 400'000, 0));
  }
  e.RunUntil(sim::Ms(10));
  ExperimentResult r = e.Collect();
  for (auto* f : reads) EXPECT_TRUE(f->done);
  EXPECT_EQ(r.pause_events, 0u);
  EXPECT_EQ(r.dropped_packets, 0u);
}

TEST(RdmaRead, MixesWithWritesOnSameHosts) {
  Experiment e(StarCfg(3));
  const auto& h = e.hosts();
  host::Flow* w = e.AddFlow(h[0], h[1], 300'000, 0);
  host::Flow* r1 = e.AddReadFlow(h[0], h[1], 300'000, 0);  // pull back
  host::Flow* r2 = e.AddReadFlow(h[2], h[0], 300'000, sim::Us(10));
  e.RunUntil(sim::Ms(10));
  EXPECT_TRUE(w->done);
  EXPECT_TRUE(r1->done);
  EXPECT_TRUE(r2->done);
}

TEST(RdmaRead, WorksUnderDcqcnToo) {
  Experiment e(StarCfg(2, "dcqcn"));
  const auto& h = e.hosts();
  host::Flow* f = e.AddReadFlow(h[0], h[1], 2'000'000, 0);
  e.RunUntil(sim::Ms(20));
  EXPECT_TRUE(f->done);
}

TEST(RdmaRead, ReadFlowsRecordFct) {
  Experiment e(StarCfg(2));
  const auto& h = e.hosts();
  e.AddReadFlow(h[0], h[1], 50'000, 0);
  e.RunUntil(sim::Ms(5));
  ExperimentResult r = e.Collect();
  EXPECT_EQ(r.flows_completed, 1u);
  EXPECT_EQ(r.fct->total_flows(), 1u);
}

}  // namespace
}  // namespace hpcc::runner
