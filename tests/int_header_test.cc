// Tests for the Fig. 7 INT stack.
#include <gtest/gtest.h>

#include "core/int_header.h"
#include "sim/time.h"

namespace hpcc::core {
namespace {

IntHop MakeHop(uint32_t sw, int64_t bps = 100'000'000'000) {
  IntHop h;
  h.bandwidth_bps = bps;
  h.ts = sim::Us(1);
  h.tx_bytes = 1234;
  h.qlen_bytes = 56;
  h.switch_id = sw;
  return h;
}

TEST(IntStack, StartsEmpty) {
  IntStack s;
  EXPECT_EQ(s.n_hops(), 0);
  EXPECT_EQ(s.path_id(), 0);
  EXPECT_EQ(s.WireBytes(), 2);
}

TEST(IntStack, PushRecordsHopsInOrder) {
  IntStack s;
  s.Push(MakeHop(1));
  s.Push(MakeHop(2));
  s.Push(MakeHop(3));
  ASSERT_EQ(s.n_hops(), 3);
  EXPECT_EQ(s.hop(0).switch_id, 1u);
  EXPECT_EQ(s.hop(2).switch_id, 3u);
}

TEST(IntStack, PathIdIsXorOfSwitchIds) {
  IntStack s;
  s.Push(MakeHop(0x00f));
  s.Push(MakeHop(0x0f0));
  EXPECT_EQ(s.path_id(), 0x0ff);
  // XOR-ing the same id again cancels (self-inverse).
  s.Push(MakeHop(0x0f0));
  EXPECT_EQ(s.path_id(), 0x00f);
}

TEST(IntStack, PathIdUsesLow12Bits) {
  IntStack s;
  s.Push(MakeHop(0xff123));
  EXPECT_EQ(s.path_id(), 0x123);
}

TEST(IntStack, WireBytesMatchPaper) {
  // "42 bytes for 5 hops" (§4.1): 2 header + 5*8.
  IntStack s;
  for (uint32_t i = 0; i < 5; ++i) s.Push(MakeHop(i));
  EXPECT_EQ(s.WireBytes(), 42);
  EXPECT_EQ(IntStack::kWorstCaseWireBytes, 42);
}

TEST(IntStack, ClearResets) {
  IntStack s;
  s.Push(MakeHop(7));
  s.Clear();
  EXPECT_EQ(s.n_hops(), 0);
  EXPECT_EQ(s.path_id(), 0);
}

TEST(IntStack, DifferentPathsDifferentIds) {
  IntStack a;
  a.Push(MakeHop(1));
  a.Push(MakeHop(2));
  IntStack b;
  b.Push(MakeHop(1));
  b.Push(MakeHop(5));
  EXPECT_NE(a.path_id(), b.path_id());
}

TEST(IntStack, SaturatesAtCapacity) {
  // A packet forwarded over a pathologically long transient path (routes
  // recomputing under link failures) must not write past the fixed stack —
  // found by the scenario fuzzer under UBSan. The stack saturates instead.
  IntStack s;
  for (int i = 0; i < kMaxIntHops + 3; ++i) s.Push(MakeHop(i + 1));
  EXPECT_EQ(s.n_hops(), kMaxIntHops);
  const uint16_t id_full = s.path_id();
  s.Push(MakeHop(99));  // ignored: no record, no path-id change
  EXPECT_EQ(s.n_hops(), kMaxIntHops);
  EXPECT_EQ(s.path_id(), id_full);
}

TEST(IntStack, CopyKeepsOnlyLivePrefix) {
  IntStack a;
  a.Push(MakeHop(3));
  a.Push(MakeHop(4));
  IntStack b(a);
  ASSERT_EQ(b.n_hops(), 2);
  EXPECT_EQ(b.hop(1).switch_id, a.hop(1).switch_id);
  EXPECT_EQ(b.path_id(), a.path_id());
  b = IntStack{};
  EXPECT_EQ(b.n_hops(), 0);
}

}  // namespace
}  // namespace hpcc::core
