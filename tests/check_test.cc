// Unit and integration tests for the invariant-monitor subsystem: each
// standard monitor's detection logic, the registry's reporting pipeline, the
// hook wiring on a live experiment, the simulator's event-budget watchdog,
// and the fuzzer's reproducer workflow (an intentionally-broken monitor must
// yield a runnable reproducer scenario JSON).
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "check/fuzzer.h"
#include "check/monitors.h"
#include "net/packet.h"
#include "runner/experiment.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"
#include "stats/trace_hash.h"

namespace hpcc::check {
namespace {

net::Packet DataPacket(int payload = 1000) {
  net::Packet p;
  p.type = net::PacketType::kData;
  p.payload_bytes = payload;
  p.priority = net::kDataPriority;
  return p;
}

TEST(TraceHash, OrderIndependentAndSensitive) {
  stats::TraceHash a, b;
  a.AddFlow(1, 0, 1, 1000, 0, 500, true);
  a.AddFlow(2, 1, 0, 2000, 10, 700, true);
  b.AddFlow(2, 1, 0, 2000, 10, 700, true);
  b.AddFlow(1, 0, 1, 1000, 0, 500, true);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.hex(), b.hex());
  EXPECT_EQ(a.hex().size(), 16u);

  stats::TraceHash c;
  c.AddFlow(1, 0, 1, 1000, 0, 501, true);  // one field off
  c.AddFlow(2, 1, 0, 2000, 10, 700, true);
  EXPECT_NE(a.digest(), c.digest());

  // Combine binds sub-digests to their salt (grid position).
  stats::TraceHash s1, s2;
  s1.Combine(a.digest(), 0);
  s1.Combine(c.digest(), 1);
  s2.Combine(c.digest(), 0);
  s2.Combine(a.digest(), 1);
  EXPECT_NE(s1.digest(), s2.digest());
}

TEST(QueueConservationMonitor, DetectsLedgerMismatch) {
  MonitorRegistry reg;
  reg.Add(std::make_unique<QueueConservationMonitor>());
  const net::Packet p = DataPacket();

  reg.OnEnqueue(3, 0, p, p.size_bytes());
  reg.OnDequeue(3, 0, p, 0);
  EXPECT_EQ(reg.violation_count(), 0u);

  // Port claims more queued bytes than the ledger: accounting bug.
  reg.OnEnqueue(3, 0, p, p.size_bytes() + 13);
  EXPECT_EQ(reg.violation_count(), 1u);
  EXPECT_NE(reg.Summary().find("ledger mismatch"), std::string::npos);

  // Dequeue of a packet that was never enqueued.
  reg.OnDequeue(4, 1, p, 0);
  EXPECT_EQ(reg.violation_count(), 2u);
}

TEST(QueueBoundMonitor, DetectsOverflowOncePerQueue) {
  MonitorRegistry reg;
  reg.Add(std::make_unique<QueueBoundMonitor>(std::vector<int64_t>{5000}));
  const net::Packet p = DataPacket();
  reg.OnEnqueue(0, 0, p, 4000);
  EXPECT_EQ(reg.violation_count(), 0u);
  reg.OnEnqueue(0, 0, p, 5001);
  reg.OnEnqueue(0, 0, p, 6000);  // same queue: not re-reported
  EXPECT_EQ(reg.violation_count(), 1u);
}

TEST(PfcSanityMonitor, PauseWhilePfcDisabled) {
  MonitorRegistry reg;
  PfcSanityMonitor::Options o;
  o.pfc_enabled = false;
  reg.Add(std::make_unique<PfcSanityMonitor>(o));
  reg.OnPauseChange(1, 0, net::kDataPriority, true, sim::Us(5));
  EXPECT_EQ(reg.violation_count(), 1u);
}

TEST(PfcSanityMonitor, OverlongAndStuckPauses) {
  MonitorRegistry reg;
  PfcSanityMonitor::Options o;
  o.max_pause = sim::Us(100);
  reg.Add(std::make_unique<PfcSanityMonitor>(o));

  reg.OnPauseChange(1, 0, net::kDataPriority, true, sim::Us(10));
  reg.OnPauseChange(1, 0, net::kDataPriority, false, sim::Us(50));
  EXPECT_EQ(reg.violation_count(), 0u);

  reg.OnPauseChange(1, 0, net::kDataPriority, true, sim::Us(60));
  reg.OnPauseChange(1, 0, net::kDataPriority, false, sim::Us(400));
  EXPECT_EQ(reg.violation_count(), 1u);  // 340us pause > 100us bound

  reg.OnPauseChange(2, 1, net::kDataPriority, true, sim::Us(500));
  reg.Finish(sim::Ms(10));  // still paused at end of run
  EXPECT_EQ(reg.violation_count(), 2u);
  EXPECT_NE(reg.Summary().find("deadlock"), std::string::npos);
}

TEST(IntSanityMonitor, DetectsBackwardsCountersAndResetsOnPathChange) {
  MonitorRegistry reg;
  reg.Add(std::make_unique<IntSanityMonitor>(IntSanityMonitor::Options{}));

  core::IntStack s1;
  core::IntHop hop;
  hop.bandwidth_bps = 100e9;
  hop.ts = sim::Us(10);
  hop.tx_bytes = 5000;
  hop.qlen_bytes = 0;
  hop.switch_id = 7;
  s1.Push(hop);
  reg.OnIntEcho(1, s1, sim::Us(10));
  EXPECT_EQ(reg.violation_count(), 0u);

  core::IntStack s2;
  hop.ts = sim::Us(12);
  hop.tx_bytes = 4000;  // txBytes must never decrease on one path
  s2.Push(hop);
  reg.OnIntEcho(1, s2, sim::Us(12));
  EXPECT_EQ(reg.violation_count(), 1u);

  // A different pathID resets history: "backwards" values are then fine.
  core::IntStack s3;
  hop.switch_id = 9;
  hop.ts = sim::Us(5);
  hop.tx_bytes = 100;
  s3.Push(hop);
  reg.OnIntEcho(1, s3, sim::Us(13));
  EXPECT_EQ(reg.violation_count(), 1u);
}

TEST(CcSanityMonitor, DetectsRateAndWindowEscapes) {
  MonitorRegistry reg;
  reg.Add(std::make_unique<CcSanityMonitor>(100'000'000'000));
  reg.OnCcUpdate(1, 1000, 50'000'000'000, sim::Us(1));
  EXPECT_EQ(reg.violation_count(), 0u);
  reg.OnCcUpdate(2, 1000, 0, sim::Us(2));              // rate must be > 0
  reg.OnCcUpdate(3, 0, 50'000'000'000, sim::Us(3));    // window must be > 0
  reg.OnCcUpdate(4, 1000, 200'000'000'000, sim::Us(4));  // above line rate
  EXPECT_EQ(reg.violation_count(), 3u);
  reg.OnCcUpdate(2, 1000, 0, sim::Us(5));  // same flow: not re-reported
  EXPECT_EQ(reg.violation_count(), 3u);
}

TEST(LosslessDropMonitor, BufferDropUnderPfcIsViolation) {
  MonitorRegistry reg;
  reg.Add(std::make_unique<LosslessDropMonitor>(/*pfc_enabled=*/true));
  const net::Packet p = DataPacket();
  reg.OnDrop(2, p, DropReason::kNoRoute);  // link failure: legitimate
  EXPECT_EQ(reg.violation_count(), 0u);
  reg.OnDrop(2, p, DropReason::kBufferFull);
  EXPECT_EQ(reg.violation_count(), 1u);
}

TEST(MonitorRegistry, CapsStoredViolationsButCountsAll) {
  // A monitor that fires on every enqueue.
  class AlwaysFire : public InvariantMonitor {
   public:
    std::string name() const override { return "always-fire"; }
    void OnEnqueue(uint32_t, int, const net::Packet&, int64_t) override {
      Report(0, "fire");
    }
  };
  MonitorRegistry reg;
  reg.Add(std::make_unique<AlwaysFire>());
  const net::Packet p = DataPacket();
  for (size_t i = 0; i < MonitorRegistry::kMaxStoredViolations + 50; ++i) {
    reg.OnEnqueue(0, 0, p, 0);
  }
  EXPECT_EQ(reg.violations().size(), MonitorRegistry::kMaxStoredViolations);
  EXPECT_EQ(reg.violation_count(), MonitorRegistry::kMaxStoredViolations + 50);
  EXPECT_NE(reg.Summary().find("more violation(s)"), std::string::npos);
}

TEST(Simulator, EventBudgetStopsLivelock) {
  // A callback rescheduling itself at now() forever would hang Run without
  // the budget watchdog.
  sim::Simulator s;
  struct Storm {
    sim::Simulator* s;
    void operator()() const { s->ScheduleAt(s->now(), Storm{s}); }
  };
  s.ScheduleAt(0, Storm{&s});
  s.set_event_budget(10'000);
  s.Run(sim::Ms(1));
  EXPECT_TRUE(s.budget_exhausted());
  EXPECT_EQ(s.events_executed(), 10'000u);
}

// A full experiment (star incast under HPCC) with every standard monitor
// attached must run violation-free — the always-on-checking happy path.
TEST(StandardMonitors, CleanIncastRun) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kStar;
  cfg.star.num_hosts = 9;
  cfg.cc.scheme = "hpcc";
  cfg.incast = true;
  cfg.incast_opts.fan_in = 8;
  cfg.incast_opts.flow_bytes = 100'000;
  cfg.incast_opts.first_event = sim::Us(10);
  cfg.incast_opts.period = 0;
  cfg.duration = sim::Us(400);

  MonitorRegistry reg;
  runner::Experiment e(cfg);
  InstallStandardMonitors(reg, e);
  EXPECT_EQ(reg.num_monitors(), 6u);
  runner::ExperimentResult r = e.Run();
  reg.Finish(e.simulator().now());
  EXPECT_EQ(reg.violation_count(), 0u) << reg.Summary();
  EXPECT_EQ(r.flows_completed, r.flows_created);
  EXPECT_NE(r.trace_hash, 0u);
}

// The acceptance path: an intentionally-broken monitor makes a fuzz run
// fail, the fuzzer emits the scenario as a reproducer JSON, and that file is
// itself a loadable, runnable scenario that reproduces the violation.
TEST(Fuzzer, BrokenMonitorEmitsRunnableReproducer) {
  const scenario::Json doc = GenerateScenarioDoc(/*seed=*/7, /*index=*/0);

  MonitorInstaller broken = [](MonitorRegistry& reg, runner::Experiment&) {
    class Broken : public InvariantMonitor {
     public:
      std::string name() const override { return "intentionally-broken"; }
      void OnEnqueue(uint32_t node, int, const net::Packet&,
                     int64_t) override {
        if (!fired_) {
          fired_ = true;
          Report(0, "node " + std::to_string(node) + " enqueued a packet");
        }
      }

     private:
      bool fired_ = false;
    };
    reg.Add(std::make_unique<Broken>());
  };

  FuzzRunReport rep = RunScenarioDocChecked(doc, 50'000'000, broken);
  ASSERT_TRUE(rep.error.empty()) << rep.error;
  ASSERT_GE(rep.violation_count, 1u);
  EXPECT_EQ(rep.violations.front().monitor, "intentionally-broken");

  const std::string path = WriteReproducer(doc, ".", rep.name);
  ASSERT_FALSE(path.empty());

  // The reproducer must load through the normal scenario pipeline and, with
  // the broken monitor attached again, reproduce the violation...
  const scenario::Scenario reloaded = scenario::LoadScenarioFile(path);
  FuzzRunReport again =
      RunScenarioDocChecked(reloaded.source, 50'000'000, broken);
  ASSERT_TRUE(again.error.empty()) << again.error;
  EXPECT_GE(again.violation_count, 1u);
  EXPECT_EQ(again.trace_hash, rep.trace_hash);

  // ...and run clean (and deterministically) under the standard set alone.
  FuzzRunReport clean = RunScenarioDocChecked(reloaded.source, 50'000'000);
  EXPECT_TRUE(clean.ok()) << clean.error << "\n"
                          << (clean.violations.empty()
                                  ? ""
                                  : clean.violations.front().Format());
  EXPECT_EQ(clean.trace_hash, rep.trace_hash);
  std::remove(path.c_str());
}

TEST(Fuzzer, GenerationIsDeterministicAndValid) {
  for (int i = 0; i < 5; ++i) {
    const scenario::Json a = GenerateScenarioDoc(42, i);
    const scenario::Json b = GenerateScenarioDoc(42, i);
    EXPECT_EQ(a.Dump(), b.Dump()) << "index " << i;
    EXPECT_NO_THROW(scenario::ParseScenario(a)) << a.Dump(2);
  }
  // Different seeds/indices explore different scenarios.
  EXPECT_NE(GenerateScenarioDoc(42, 0).Dump(),
            GenerateScenarioDoc(42, 1).Dump());
  EXPECT_NE(GenerateScenarioDoc(42, 0).Dump(),
            GenerateScenarioDoc(43, 0).Dump());
}

}  // namespace
}  // namespace hpcc::check
