// Regression: scenario JSON parse/print must be locale-independent. The
// parser used std::strtod and the printer snprintf("%g"), both of which obey
// LC_NUMERIC — under a comma-decimal locale (de_DE) "1.5" parsed as 1 and
// every emitted double changed, silently corrupting scenario round trips and
// CSVs. The suite flips the process locale to a comma-decimal one (generated
// on the fly with localedef when the container has none installed) and pins
// parse and print bytes.
#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "scenario/json.h"
#include "scenario/scenario.h"

namespace hpcc::scenario {
namespace {

// Switches LC_NUMERIC to a comma-decimal locale for the test's lifetime.
// Returns false (test skipped) when no such locale can be found or built.
class CommaLocale {
 public:
  CommaLocale() {
    static const char* kCandidates[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                                        "fr_FR.UTF-8", "fr_FR.utf8"};
    for (const char* name : kCandidates) {
      if (std::setlocale(LC_NUMERIC, name) != nullptr) {
        active_ = Verify();
        if (active_) return;
      }
    }
    // Minimal containers ship only the C locale; build one into a temp dir
    // and point glibc at it. Failure of any step just skips the test.
    const std::string dir = ::testing::TempDir() + "hpcc_locale";
    const std::string cmd = "mkdir -p " + dir +
                            " && localedef -i de_DE -f UTF-8 " + dir +
                            "/de_DE.UTF-8 >/dev/null 2>&1";
    if (std::system(cmd.c_str()) == 0) {
      ::setenv("LOCPATH", dir.c_str(), 1);
      if (std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr) {
        active_ = Verify();
      }
    }
  }

  ~CommaLocale() { std::setlocale(LC_NUMERIC, "C"); }

  bool active() const { return active_; }

 private:
  // The locale must actually flip the decimal separator, or the test would
  // pass vacuously.
  static bool Verify() {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f", 1.5);
    return std::string(buf) == "1,5";
  }

  bool active_ = false;
};

TEST(JsonLocale, ParseAndPrintSurviveCommaDecimalLocale) {
  CommaLocale locale;
  if (!locale.active()) {
    GTEST_SKIP() << "no comma-decimal locale available on this system";
  }
  // Parse: "1.5" must stay 1.5, not truncate to 1 at the comma.
  const Json v = Json::Parse("[1.5, -0.25, 3.1415926535897931, 2e-3]");
  EXPECT_DOUBLE_EQ(v.at(0).AsDouble(), 1.5);
  EXPECT_DOUBLE_EQ(v.at(1).AsDouble(), -0.25);
  EXPECT_DOUBLE_EQ(v.at(2).AsDouble(), 3.1415926535897931);
  EXPECT_DOUBLE_EQ(v.at(3).AsDouble(), 0.002);

  // Print: bytes identical to the "C"-locale form, never "1,5".
  EXPECT_EQ(v.Dump(), "[1.5,-0.25,3.141592653589793,0.002]");
  EXPECT_EQ(FormatNumber(1.5), "1.5");
  EXPECT_EQ(FormatNumber(13.23), "13.23");
  EXPECT_EQ(FormatNumber(1e21), "1e+21");

  // Full scenario round trip under the flipped locale: parse -> canonical
  // JSON -> parse must be a fixed point with fractional fields intact.
  const std::string doc = R"({
    "name": "locale_pin",
    "topology": {"kind": "dumbbell", "hosts_per_side": 2,
                 "trunk_gbps": 40.5, "link_delay_us": 1.25},
    "cc": {"scheme": "hpcc", "eta": 0.95},
    "workload": {"load": 0.3, "trace": "websearch", "max_flows": 10},
    "duration_ms": 0.5
  })";
  const Scenario s = ParseScenarioText(doc);
  EXPECT_DOUBLE_EQ(s.config.load, 0.3);
  EXPECT_EQ(s.config.dumbbell.trunk_bps, 40'500'000'000);
  const Json canon = ScenarioToJson(s);
  const Scenario again = ParseScenarioText(canon.Dump(2));
  EXPECT_EQ(ScenarioToJson(again).Dump(2), canon.Dump(2));
}

TEST(JsonLocale, RoundTripBytesMatchCLocale) {
  // Dump a numeric document in "C", flip the locale, and require identical
  // bytes from the same values.
  const char* kDoc = "[0.1,1.5,2.25,1234.5678,9.99e-05,-0.125,1e+21]";
  std::setlocale(LC_NUMERIC, "C");
  const std::string c_bytes = Json::Parse(kDoc).Dump();
  CommaLocale locale;
  if (!locale.active()) {
    GTEST_SKIP() << "no comma-decimal locale available on this system";
  }
  EXPECT_EQ(Json::Parse(kDoc).Dump(), c_bytes);
  EXPECT_EQ(c_bytes, kDoc);
}

// The underflow/overflow edges of the locale-independent number path.
TEST(JsonLocale, NumberRangeEdges) {
  EXPECT_THROW(Json::Parse("1e999"), JsonError);   // overflow: loud failure
  EXPECT_THROW(Json::Parse("-1e999"), JsonError);
  // Overflows dressed up as underflows: a "0." mantissa or an "e-" suffix
  // must not smuggle a huge value through as zero.
  EXPECT_THROW(Json::Parse("0.5e400"), JsonError);
  EXPECT_THROW(Json::Parse("-0.5e400"), JsonError);
  std::string huge_mantissa = "1";
  huge_mantissa.append(400, '0');
  huge_mantissa += "e-1";  // 1e399 hiding behind a negative exponent
  EXPECT_THROW(Json::Parse(huge_mantissa), JsonError);
  EXPECT_DOUBLE_EQ(Json::Parse("1e-999").AsDouble(), 0.0);  // underflow: 0
  EXPECT_DOUBLE_EQ(Json::Parse("-1e-999").AsDouble(), -0.0);
  EXPECT_DOUBLE_EQ(Json::Parse("0.5e-400").AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(Json::Parse("0.0000000001").AsDouble(), 1e-10);
}

}  // namespace
}  // namespace hpcc::scenario
