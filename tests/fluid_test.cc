// Tests for the per-RTT fluid model of HPCC dynamics (Appendix A companion).
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/fluid.h"

namespace hpcc::analytic {
namespace {

constexpr double kBdp = 162'500;  // 100G x 13us in bytes

FluidParams Params(double wai = 80) {
  FluidParams p;
  p.capacity_bytes_per_rtt = kBdp;
  p.eta = 0.95;
  p.max_stage = 5;
  p.wai_bytes = wai;
  return p;
}

TEST(Fluid, SingleFlowConvergesToEtaBdp) {
  FluidLink link(Params(), {kBdp});  // line-rate start
  for (int i = 0; i < 50; ++i) link.Step();
  EXPECT_NEAR(link.total_window() / kBdp, 0.95, 0.01);
  EXPECT_NEAR(link.queue_bytes(), 0.0, 1.0);
}

TEST(Fluid, OverloadDrainsThenRecovers) {
  // 16 flows all starting at a full window: 16x overload (incast, §A.4).
  // The queue (15 BDP of excess) drains at ~1 BDP per RTT because windows
  // collapse and injection stops; after the drain, MI re-ramps quickly.
  FluidLink link(Params(), std::vector<double>(16, kBdp));
  link.Step();
  int rounds_to_drain = 0;
  while (link.queue_bytes() > 1.0 && rounds_to_drain < 100) {
    link.Step();
    ++rounds_to_drain;
  }
  EXPECT_LT(rounds_to_drain, 25);  // ~15 BDP of drain + MD rounds
  // Windows undershoot during the drain (U stays high while the queue
  // lasts); AI then an MI probe restore eta within ~maxStage+2 rounds.
  for (int i = 0; i < 10; ++i) link.Step();
  EXPECT_NEAR(link.total_window() / kBdp, 0.95, 0.05);
  EXPECT_LT(link.queue_bytes(), kBdp * 0.05);
}

TEST(Fluid, UnderloadRampsUpViaAiThenMi) {
  FluidLink link(Params(), {kBdp / 100});  // nearly idle start
  int rounds = 0;
  while (link.total_window() < 0.9 * kBdp && rounds < 200) {
    link.Step();
    ++rounds;
  }
  // AI alone would need (0.9*BDP)/80 ~ 1800 rounds; MI probing after
  // maxStage rounds makes it exponential (§3.3).
  EXPECT_LT(rounds, 60);
}

TEST(Fluid, SteadyStateUtilizationBand) {
  // Appendix A.3: equilibrium utilization sits above eta by an amount that
  // grows with the aggregate AI: U = eta/(1 - N*WAI/(U*BDP)) approx.
  FluidLink link(Params(), std::vector<double>(10, kBdp / 10));
  for (int i = 0; i < 200; ++i) link.Step();
  const double u = link.utilization();
  EXPECT_GT(u, 0.94);
  EXPECT_LT(u, 1.0);
}

TEST(Fluid, FairnessDriftsTowardEqualShares) {
  // Two flows at 3:1; MI preserves ratios, the AI term closes the gap.
  FluidLink link(Params(/*wai=*/500), {3 * kBdp / 4, kBdp / 4});
  const double jain0 = link.JainIndex();
  for (int i = 0; i < 400; ++i) link.Step();
  EXPECT_GT(link.JainIndex(), jain0);
  EXPECT_GT(link.JainIndex(), 0.98);
}

TEST(Fluid, SmallerWaiConvergesFairnessSlower) {
  auto rounds_to_fair = [](double wai) {
    FluidLink link(Params(wai), {3 * kBdp / 4, kBdp / 4});
    int rounds = 0;
    while (link.JainIndex() < 0.99 && rounds < 100'000) {
      link.Step();
      ++rounds;
    }
    return rounds;
  };
  EXPECT_GT(rounds_to_fair(50), rounds_to_fair(500));
}

TEST(Fluid, JoinAndLeave) {
  FluidLink link(Params(), {kBdp});
  for (int i = 0; i < 30; ++i) link.Step();
  const double solo = link.windows()[0];
  link.AddFlow(kBdp);  // line-rate joiner (RDMA semantics)
  for (int i = 0; i < 30; ++i) link.Step();
  // Both flows now well below the solo window; total at eta*BDP.
  EXPECT_LT(link.windows()[0], solo);
  EXPECT_NEAR(link.total_window() / kBdp, 0.95, 0.05);
  link.RemoveFlow(1);
  for (int i = 0; i < 60; ++i) link.Step();
  EXPECT_NEAR(link.windows()[0], solo, solo * 0.05);  // reclaimed
}

TEST(Fluid, FlowHandlesSurviveInterleavedAddRemove) {
  // Handles are stable ids, not raw indices: removing an earlier flow must
  // not silently retarget a later handle (the old raw-index API removed
  // whatever slid into the slot).
  FluidLink link(Params(), {kBdp, kBdp / 2});
  const FluidLink::FlowId a = 0;  // ctor flows get ids 0..n-1
  const FluidLink::FlowId b = 1;
  const FluidLink::FlowId c = link.AddFlow(kBdp / 4);
  ASSERT_EQ(c, 2u);
  for (int i = 0; i < 5; ++i) link.Step();

  link.RemoveFlow(b);
  EXPECT_TRUE(link.HasFlow(a));
  EXPECT_FALSE(link.HasFlow(b));
  EXPECT_TRUE(link.HasFlow(c));
  // `c` still addresses the same flow even though it moved down a slot.
  const double wc = link.WindowOf(c);
  const FluidLink::FlowId d = link.AddFlow(kBdp);
  EXPECT_EQ(d, 3u);  // ids never recycle
  EXPECT_EQ(link.WindowOf(c), wc);

  link.RemoveFlow(a);
  link.RemoveFlow(c);
  EXPECT_TRUE(link.HasFlow(d));
  EXPECT_EQ(link.windows().size(), 1u);

  // Stale or unknown handles fail loudly instead of removing a neighbor.
  EXPECT_THROW(link.RemoveFlow(c), std::out_of_range);
  EXPECT_THROW(link.RemoveFlow(999), std::out_of_range);
  EXPECT_THROW(link.WindowOf(a), std::out_of_range);
  for (int i = 0; i < 30; ++i) link.Step();
  EXPECT_NEAR(link.total_window() / kBdp, 0.95, 0.05);  // d reclaims the link
}

TEST(Fluid, QueueNeverNegativeAndWindowsPositive) {
  FluidLink link(Params(), {kBdp * 4, kBdp / 1000, kBdp});
  for (int i = 0; i < 500; ++i) {
    link.Step();
    EXPECT_GE(link.queue_bytes(), 0.0);
    for (double w : link.windows()) EXPECT_GE(w, 1.0);
  }
}

// Property sweep: for any flow count the fluid model settles into the same
// normalized operating point.
class FluidFlowCount : public ::testing::TestWithParam<int> {};

TEST_P(FluidFlowCount, ConvergesForAnyN) {
  const int n = GetParam();
  FluidParams p = Params();
  // Scale W_AI per the §3.3 rule so aggregate AI stays within headroom.
  p.wai_bytes = kBdp * (1 - p.eta) / (2.0 * n);
  FluidLink link(p, std::vector<double>(static_cast<size_t>(n), kBdp));
  for (int i = 0; i < 300; ++i) link.Step();
  EXPECT_NEAR(link.total_window() / kBdp, p.eta, 0.04) << n;
  EXPECT_LT(link.queue_bytes(), kBdp * 0.02) << n;
  EXPECT_GT(link.JainIndex(), 0.999) << n;  // symmetric start stays fair
}

INSTANTIATE_TEST_SUITE_P(Sizes, FluidFlowCount,
                         ::testing::Values(1, 2, 4, 16, 64, 256));

}  // namespace
}  // namespace hpcc::analytic
