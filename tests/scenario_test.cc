// Scenario subsystem parsing tests: the zero-dependency JSON value type,
// schema validation (malformed inputs must be rejected loudly), sweep-grid
// expansion, and a full-scenario JSON round trip.
#include <gtest/gtest.h>

#include "scenario/json.h"
#include "scenario/scenario.h"

namespace hpcc::scenario {
namespace {

// ---- JSON value + parser ----------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::Parse("null").is_null());
  EXPECT_TRUE(Json::Parse("true").AsBool());
  EXPECT_FALSE(Json::Parse("false").AsBool());
  EXPECT_DOUBLE_EQ(Json::Parse("-2.5e3").AsDouble(), -2500.0);
  EXPECT_EQ(Json::Parse("42").AsInt(), 42);
  EXPECT_EQ(Json::Parse("\"hi\\n\\\"there\\\"\"").AsString(), "hi\n\"there\"");
}

TEST(Json, ParsesNestedStructures) {
  const Json j = Json::Parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": "x"}, "e": null})");
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.Get("a").size(), 3u);
  EXPECT_DOUBLE_EQ(j.Get("a").at(1).AsDouble(), 2.0);
  EXPECT_TRUE(j.Get("a").at(2).Get("b").AsBool());
  EXPECT_EQ(j.Get("c").Get("d").AsString(), "x");
  EXPECT_TRUE(j.Get("e").is_null());
  EXPECT_EQ(j.Find("missing"), nullptr);
}

TEST(Json, UnicodeEscapes) {
  EXPECT_EQ(Json::Parse("\"\\u0041\"").AsString(), "A");
  EXPECT_EQ(Json::Parse("\"\\u00e9\"").AsString(), "\xc3\xa9");  // é in UTF-8
  EXPECT_THROW(Json::Parse("\"\\ud800\""), JsonError);  // surrogate
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::Parse(""), JsonError);
  EXPECT_THROW(Json::Parse("{"), JsonError);
  EXPECT_THROW(Json::Parse("[1, 2"), JsonError);
  EXPECT_THROW(Json::Parse("[1,]"), JsonError);
  EXPECT_THROW(Json::Parse("{\"a\": }"), JsonError);
  EXPECT_THROW(Json::Parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(Json::Parse("{a: 1}"), JsonError);
  EXPECT_THROW(Json::Parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::Parse("tru"), JsonError);
  EXPECT_THROW(Json::Parse("01x"), JsonError);
  EXPECT_THROW(Json::Parse("012"), JsonError);   // leading zero
  EXPECT_THROW(Json::Parse("-07.5"), JsonError);
  EXPECT_NO_THROW(Json::Parse("0.5"));
  EXPECT_NO_THROW(Json::Parse("-0.5"));
  EXPECT_THROW(Json::Parse("1 2"), JsonError);       // trailing content
  EXPECT_THROW(Json::Parse("{\"a\":1,\"a\":2}"), JsonError);  // dup key
  EXPECT_THROW(Json::Parse("1e999"), JsonError);     // overflow
}

TEST(Json, RejectsDeepNesting) {
  std::string bomb;
  for (int i = 0; i < 200; ++i) bomb += "[";
  EXPECT_THROW(Json::Parse(bomb), JsonError);
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    Json::Parse("{\n  \"a\": nope\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Json, DumpParsesBackIdentically) {
  const std::string text =
      R"({"s":"a\"b","n":0.95,"i":-7,"b":true,"x":null,"arr":[1,2.5,"z"],)"
      R"("o":{"k":3}})";
  const Json j = Json::Parse(text);
  EXPECT_EQ(Json::Parse(j.Dump()), j);
  EXPECT_EQ(Json::Parse(j.Dump(2)), j);  // pretty-print too
  EXPECT_EQ(j.Dump(), Json::Parse(j.Dump()).Dump());
}

TEST(Json, NumberFormattingRoundTrips) {
  for (const double v : {0.95, 1.0 / 3.0, 1e-12, 123456789012345.0, -0.125}) {
    EXPECT_DOUBLE_EQ(Json::Parse(FormatNumber(v)).AsDouble(), v) << v;
  }
  EXPECT_EQ(FormatNumber(3.0), "3");  // integral values stay integer-shaped
}

TEST(Json, SetPathCreatesIntermediateObjects) {
  Json j = Json::MakeObject();
  j.SetPath("workload.load", Json::MakeNumber(0.5));
  EXPECT_DOUBLE_EQ(j.Get("workload").Get("load").AsDouble(), 0.5);
  j.SetPath("workload.load", Json::MakeNumber(0.7));  // overwrite
  EXPECT_DOUBLE_EQ(j.Get("workload").Get("load").AsDouble(), 0.7);
  EXPECT_THROW(j.SetPath("workload.load.deeper", Json()), JsonError);
}

TEST(Json, SetPathIndexesArrayElements) {
  Json j = Json::Parse(R"({"events": [
    {"type": "load_phase", "load": 0.5},
    {"type": "incast", "fan_in": 4}
  ]})");
  j.SetPath("events.1.fan_in", Json::MakeNumber(8));
  EXPECT_EQ(j.Get("events").at(1).Get("fan_in").AsInt(), 8);
  j.SetPath("events.0", Json::Parse(R"({"type": "link_down", "link": 2})"));
  EXPECT_EQ(j.Get("events").at(0).Get("type").AsString(), "link_down");
  // Arrays are indexed, never extended; segments must be numeric.
  EXPECT_THROW(j.SetPath("events.2.fan_in", Json::MakeNumber(1)), JsonError);
  EXPECT_THROW(j.SetPath("events.first.fan_in", Json::MakeNumber(1)), JsonError);
}

// ---- scenario schema --------------------------------------------------------

constexpr char kMinimal[] = R"({
  "name": "t",
  "topology": {"kind": "star", "hosts": 4}
})";

TEST(Scenario, MinimalDocumentUsesDefaults) {
  const Scenario s = ParseScenarioText(kMinimal);
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.config.topology, runner::TopologyKind::kStar);
  EXPECT_EQ(s.config.star.num_hosts, 4);
  EXPECT_EQ(s.config.cc.scheme, "hpcc");
  EXPECT_EQ(s.config.duration, sim::Ms(10));
  EXPECT_TRUE(s.config.pfc_enabled);
  EXPECT_TRUE(s.events.empty());
  EXPECT_TRUE(s.sweep.empty());
}

TEST(Scenario, ParsesFullDocument) {
  const Scenario s = ParseScenarioText(R"({
    "name": "full",
    "description": "everything at once",
    "topology": {"kind": "dumbbell", "hosts_per_side": 3, "host_gbps": 25,
                 "trunk_gbps": 100, "link_delay_us": 2},
    "cc": {"scheme": "dcqcn+win", "eta": 0.9, "expected_flows": 6},
    "workload": {"load": 0.4, "trace": "fbhadoop", "max_flows": 50,
                 "incast": {"fan_in": 4, "flow_bytes": 100000,
                            "first_event_us": 50, "period_us": 500}},
    "duration_ms": 1.5,
    "seed": 9,
    "pfc": false,
    "recovery": "irn",
    "events": [
      {"type": "link_down", "at_us": 100, "link": 0},
      {"type": "link_up", "at_us": 200, "link": 0},
      {"type": "incast", "at_us": 300, "fan_in": 2, "flow_bytes": 5000},
      {"type": "load_phase", "at_us": 400, "load": 0.8}
    ]
  })");
  EXPECT_EQ(s.config.topology, runner::TopologyKind::kDumbbell);
  EXPECT_EQ(s.config.dumbbell.hosts_per_side, 3);
  EXPECT_EQ(s.config.dumbbell.host_bps, 25'000'000'000);
  EXPECT_EQ(s.config.dumbbell.trunk_bps, 100'000'000'000);
  EXPECT_EQ(s.config.dumbbell.link_delay, sim::Us(2));
  EXPECT_EQ(s.config.cc.scheme, "dcqcn+win");
  EXPECT_DOUBLE_EQ(s.config.cc.hpcc.eta, 0.9);
  EXPECT_DOUBLE_EQ(s.config.load, 0.4);
  EXPECT_EQ(s.config.trace, "fbhadoop");
  EXPECT_EQ(s.config.max_flows, 50u);
  EXPECT_TRUE(s.config.incast);
  EXPECT_EQ(s.config.incast_opts.fan_in, 4);
  EXPECT_EQ(s.config.duration, sim::TimePs(1'500'000'000));
  EXPECT_EQ(s.config.seed, 9u);
  EXPECT_FALSE(s.config.pfc_enabled);
  EXPECT_EQ(s.config.recovery, host::RecoveryMode::kIrn);

  ASSERT_EQ(s.events.size(), 4u);
  EXPECT_EQ(s.events[0].kind, ScenarioEvent::Kind::kLinkDown);
  EXPECT_EQ(s.events[0].at, sim::Us(100));
  EXPECT_EQ(s.events[0].link, 0u);
  EXPECT_EQ(s.events[1].kind, ScenarioEvent::Kind::kLinkUp);
  EXPECT_EQ(s.events[2].kind, ScenarioEvent::Kind::kIncast);
  EXPECT_EQ(s.events[2].incast.fan_in, 2);
  EXPECT_EQ(s.events[2].incast.first_event, sim::Us(300));
  EXPECT_EQ(s.events[2].incast.period, 0);  // one-shot
  EXPECT_EQ(s.events[3].kind, ScenarioEvent::Kind::kLoadPhase);
  EXPECT_DOUBLE_EQ(s.events[3].load, 0.8);
}

TEST(Scenario, RejectsMalformedDocuments) {
  // Not an object / not JSON at all.
  EXPECT_THROW(ParseScenarioText("[1,2]"), ScenarioError);
  EXPECT_THROW(ParseScenarioText("{nope"), JsonError);
  // Missing / bad topology.
  EXPECT_THROW(ParseScenarioText(R"({"name": "x"})"), ScenarioError);
  EXPECT_THROW(ParseScenarioText(R"({"topology": {"kind": "torus"}})"),
               ScenarioError);
  EXPECT_THROW(ParseScenarioText(R"({"topology": {"hosts": 3}})"),
               ScenarioError);
  // Unknown keys anywhere are rejected (typo protection).
  EXPECT_THROW(
      ParseScenarioText(
          R"({"topology": {"kind": "star", "hosts": 3}, "duation_ms": 2})"),
      ScenarioError);
  EXPECT_THROW(
      ParseScenarioText(R"({"topology": {"kind": "star", "hostz": 3}})"),
      ScenarioError);
  // Type and range violations.
  EXPECT_THROW(
      ParseScenarioText(
          R"({"topology": {"kind": "star", "hosts": 3}, "duration_ms": -1})"),
      ScenarioError);
  EXPECT_THROW(
      ParseScenarioText(
          R"({"topology": {"kind": "star", "hosts": 3}, "duration_ms": "x"})"),
      JsonError);
  EXPECT_THROW(
      ParseScenarioText(
          R"({"topology": {"kind": "star", "hosts": 3}, "recovery": "tcp"})"),
      ScenarioError);
  EXPECT_THROW(
      ParseScenarioText(R"({"topology": {"kind": "star", "hosts": 3},
                            "workload": {"load": -0.1}})"),
      ScenarioError);
  EXPECT_THROW(
      ParseScenarioText(R"({"topology": {"kind": "star", "hosts": 3},
                            "workload": {"trace": "websearch2"}})"),
      ScenarioError);
  // Incast shapes the topology can never host are parse errors (the
  // generator's own guard is a debug-only assert).
  EXPECT_THROW(
      ParseScenarioText(R"({"topology": {"kind": "star", "hosts": 4},
                            "workload": {"incast": {"fan_in": 8,
                                                    "flow_bytes": 1000}}})"),
      ScenarioError);
  EXPECT_THROW(
      ParseScenarioText(R"({"topology": {"kind": "star", "hosts": 4},
                            "workload": {"incast": {"fan_in": 2,
                                                    "flow_bytes": 1000,
                                                    "receiver": 9}}})"),
      ScenarioError);
  // Bad events.
  EXPECT_THROW(
      ParseScenarioText(R"({"topology": {"kind": "star", "hosts": 3},
                            "events": [{"type": "link_down", "at_us": 1}]})"),
      ScenarioError);  // missing link
  EXPECT_THROW(
      ParseScenarioText(R"({"topology": {"kind": "star", "hosts": 3},
                            "events": [{"type": "warp", "at_us": 1}]})"),
      ScenarioError);
  EXPECT_THROW(
      ParseScenarioText(
          R"({"topology": {"kind": "star", "hosts": 3},
              "events": [{"type": "link_up", "at_us": -5, "link": 0}]})"),
      ScenarioError);
  // Values past the representable range would be UB to cast; reject loudly.
  EXPECT_THROW(
      ParseScenarioText(
          R"({"topology": {"kind": "star", "hosts": 3, "host_gbps": 1e12}})"),
      ScenarioError);
  EXPECT_THROW(
      ParseScenarioText(R"({"topology": {"kind": "star", "hosts": 4},
                            "workload": {"incast": {"fan_in": 2,
                                                    "flow_bytes": 1e20}}})"),
      ScenarioError);
  EXPECT_THROW(
      ParseScenarioText(
          R"({"topology": {"kind": "star", "hosts": 4},
              "workload": {"incast": {"fan_in": 2, "flow_bytes": 1000,
                                      "receiver": 4294967295}}})"),
      ScenarioError);
  // Times beyond the int64 picosecond clock would be UB to cast; they must
  // fail like any other malformed input.
  EXPECT_THROW(
      ParseScenarioText(
          R"({"topology": {"kind": "star", "hosts": 3},
              "duration_ms": 1e300})"),
      ScenarioError);
  EXPECT_THROW(
      ParseScenarioText(
          R"({"topology": {"kind": "star", "hosts": 3},
              "events": [{"type": "link_up", "at_us": 1e300, "link": 0}]})"),
      ScenarioError);
  // Bad sweep shapes.
  EXPECT_THROW(
      ParseScenarioText(R"({"topology": {"kind": "star", "hosts": 3},
                            "sweep": {"workload.load": []}})"),
      ScenarioError);
  EXPECT_THROW(
      ParseScenarioText(R"({"topology": {"kind": "star", "hosts": 3},
                            "sweep": [0.3]})"),
      ScenarioError);
}

TEST(Scenario, SweepExpansionIsTheCrossProduct) {
  const Scenario s = ParseScenarioText(R"({
    "name": "grid",
    "topology": {"kind": "star", "hosts": 4},
    "workload": {"load": 0.1},
    "sweep": {
      "workload.load": [0.3, 0.5, 0.7],
      "cc.scheme": ["hpcc", "dcqcn"]
    }
  })");
  const std::vector<ScenarioRun> runs = ExpandSweep(s);
  ASSERT_EQ(runs.size(), 6u);  // 3 loads x 2 schemes

  // Declaration order: first axis slowest, second fastest.
  EXPECT_EQ(runs[0].label, "grid[load=0.3,scheme=hpcc]");
  EXPECT_EQ(runs[1].label, "grid[load=0.3,scheme=dcqcn]");
  EXPECT_EQ(runs[5].label, "grid[load=0.7,scheme=dcqcn]");

  // Patched values land in the resolved configs; sweeps don't nest.
  EXPECT_DOUBLE_EQ(runs[0].scenario.config.load, 0.3);
  EXPECT_EQ(runs[0].scenario.config.cc.scheme, "hpcc");
  EXPECT_DOUBLE_EQ(runs[5].scenario.config.load, 0.7);
  EXPECT_EQ(runs[5].scenario.config.cc.scheme, "dcqcn");
  EXPECT_TRUE(runs[0].scenario.sweep.empty());

  // Params echo the axis assignments for the CSV columns.
  ASSERT_EQ(runs[3].params.size(), 2u);
  EXPECT_EQ(runs[3].params[0].first, "workload.load");
  EXPECT_EQ(runs[3].params[0].second, "0.5");
  EXPECT_EQ(runs[3].params[1].second, "dcqcn");
}

TEST(Scenario, SweepOverUnknownKeyFailsAtExpansion) {
  const Scenario s = ParseScenarioText(R"({
    "topology": {"kind": "star", "hosts": 4},
    "sweep": {"cc.bogus_knob": [1, 2]}
  })");
  EXPECT_THROW(ExpandSweep(s), ScenarioError);
}

TEST(Scenario, NoSweepExpandsToSingleRun) {
  const Scenario s = ParseScenarioText(kMinimal);
  const auto runs = ExpandSweep(s);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].label, "t");
  EXPECT_TRUE(runs[0].params.empty());
}

TEST(Scenario, JsonRoundTripIsAFixedPoint) {
  const Scenario s1 = ParseScenarioText(R"({
    "name": "rt",
    "description": "round-trip fixture",
    "topology": {"kind": "fattree", "pods": 2, "tors_per_pod": 2,
                 "aggs_per_pod": 2, "hosts_per_tor": 4},
    "cc": {"scheme": "timely+win", "eta": 0.9},
    "workload": {"load": 0.35, "trace": "fbhadoop", "max_flows": 77,
                 "incast": {"fan_in": 6, "flow_bytes": 250000,
                            "first_event_us": 150, "period_us": 900}},
    "duration_ms": 2.5,
    "seed": 13,
    "pfc": false,
    "recovery": "irn",
    "events": [
      {"type": "incast", "at_us": 20, "fan_in": 3, "flow_bytes": 9000},
      {"type": "link_down", "at_us": 111, "link": 2},
      {"type": "link_up", "at_us": 222.5, "link": 2},
      {"type": "load_phase", "at_us": 500, "load": 0.6}
    ],
    "sweep": {"seed": [1, 2, 3, 4]}
  })");
  const Json d1 = ScenarioToJson(s1);
  const Scenario s2 = ParseScenario(d1);
  const Json d2 = ScenarioToJson(s2);
  // Canonical form is a fixed point, byte for byte.
  EXPECT_EQ(d1.Dump(), d2.Dump());
  EXPECT_EQ(d1, d2);

  // And the reparsed scenario is semantically identical.
  EXPECT_EQ(s2.name, s1.name);
  EXPECT_EQ(s2.description, "round-trip fixture");
  EXPECT_EQ(s2.config.topology, s1.config.topology);
  EXPECT_EQ(s2.config.fattree.hosts_per_tor, s1.config.fattree.hosts_per_tor);
  EXPECT_EQ(s2.config.cc.scheme, s1.config.cc.scheme);
  EXPECT_DOUBLE_EQ(s2.config.load, s1.config.load);
  EXPECT_EQ(s2.config.duration, s1.config.duration);
  EXPECT_EQ(s2.config.seed, s1.config.seed);
  EXPECT_EQ(s2.config.recovery, s1.config.recovery);
  ASSERT_EQ(s2.events.size(), s1.events.size());
  for (size_t i = 0; i < s1.events.size(); ++i) {
    EXPECT_EQ(s2.events[i].kind, s1.events[i].kind) << i;
    EXPECT_EQ(s2.events[i].at, s1.events[i].at) << i;
  }
  ASSERT_EQ(s2.sweep.size(), 1u);
  EXPECT_EQ(s2.sweep[0].key, "seed");
  EXPECT_EQ(s2.sweep[0].values.size(), 4u);
  // The round-tripped document still expands.
  EXPECT_EQ(ExpandSweep(s2).size(), 4u);
}

TEST(Scenario, LoadScenarioFileReportsMissingFile) {
  EXPECT_THROW(LoadScenarioFile("/nonexistent/path.json"), ScenarioError);
}

}  // namespace
}  // namespace hpcc::scenario
