// Tests for CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "stats/csv_writer.h"

namespace hpcc::stats {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CsvWriter, TimeSeries) {
  TimeSeries ts;
  ts.Add(sim::Us(1), 10.5);
  ts.Add(sim::Us(2), 20.25);
  const std::string path = TempPath("series.csv");
  ASSERT_TRUE(WriteTimeSeriesCsv(path, ts, "gbps"));
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("time_us,gbps\n"), std::string::npos);
  EXPECT_NE(content.find("1.000,10.5\n"), std::string::npos);
  EXPECT_NE(content.find("2.000,20.25\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvWriter, EmptySeriesWritesHeaderOnly) {
  const std::string path = TempPath("empty.csv");
  ASSERT_TRUE(WriteTimeSeriesCsv(path, TimeSeries{}));
  EXPECT_EQ(Slurp(path), "time_us,value\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, Cdf) {
  PercentileTracker d;
  for (int i = 1; i <= 100; ++i) d.Add(i);
  const std::string path = TempPath("cdf.csv");
  ASSERT_TRUE(WriteCdfCsv(path, d, 25));
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("percentile,value\n"), std::string::npos);
  EXPECT_NE(content.find("0,1\n"), std::string::npos);
  EXPECT_NE(content.find("100,100\n"), std::string::npos);
  // 5 steps: 0,25,50,75,100 plus header.
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 6);
  std::remove(path.c_str());
}

TEST(CsvWriter, CdfRejectsBadStep) {
  PercentileTracker d;
  EXPECT_FALSE(WriteCdfCsv(TempPath("x.csv"), d, 0));
}

TEST(CsvWriter, Fct) {
  FctRecorder fct({1'000, 10'000});
  fct.Record(500, sim::Us(20), sim::Us(10));
  fct.Record(5'000, sim::Us(40), sim::Us(10));
  const std::string path = TempPath("fct.csv");
  ASSERT_TRUE(WriteFctCsv(path, fct));
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("bin,count,p50,p95,p99\n"), std::string::npos);
  EXPECT_NE(content.find("<=1K,1,2.0000"), std::string::npos);
  EXPECT_NE(content.find("(1K,10K],1,4.0000"), std::string::npos);
  // Empty bins omitted: header + 2 rows.
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 3);
  std::remove(path.c_str());
}

TEST(CsvWriter, UnwritablePathFails) {
  TimeSeries ts;
  EXPECT_FALSE(WriteTimeSeriesCsv("/nonexistent-dir/x.csv", ts));
}

}  // namespace
}  // namespace hpcc::stats
