// Tests for the host NIC transport: windowing, pacing, per-packet ACKs,
// go-back-N, IRN, RTO, CNP generation and flow completion.
#include <gtest/gtest.h>

#include <limits>

#include "cc/factory.h"
#include "host/host_node.h"
#include "topo/simple.h"

namespace hpcc::host {
namespace {

// Fixed-window, fixed-rate CC to exercise the transport in isolation.
class FixedCc : public cc::CongestionControl {
 public:
  FixedCc(int64_t window, int64_t rate) : window_(window), rate_(rate) {}
  void OnAck(const cc::AckInfo&) override {}
  int64_t window_bytes() const override { return window_; }
  int64_t rate_bps() const override { return rate_; }
  std::string name() const override { return "fixed"; }

 private:
  int64_t window_;
  int64_t rate_;
};

constexpr int64_t kBps = 100'000'000'000;

struct Harness {
  // Declared first so it is destroyed last: the topology's flows hold CC
  // instances whose destructors cancel simulator timers (caught by ASan).
  std::unique_ptr<sim::Simulator> sim_;
  topo::StarTopology star;
  sim::Simulator* s;

  explicit Harness(int hosts = 2, net::SwitchConfig sw = {}) {
    topo::StarOptions o;
    o.num_hosts = hosts;
    o.host_bps = kBps;
    o.sw = sw;
    sim_ = std::make_unique<sim::Simulator>();
    star = topo::MakeStar(sim_.get(), o);
    s = sim_.get();
  }

  Flow* StartFlow(uint32_t src, uint32_t dst, uint64_t bytes,
                  cc::CcPtr cc, RecoveryMode rec = RecoveryMode::kGoBackN,
                  sim::TimePs at = 0) {
    FlowSpec spec;
    spec.id = next_id_++;
    spec.src = src;
    spec.dst = dst;
    spec.size_bytes = bytes;
    spec.start_time = at;
    auto flow = std::make_unique<Flow>(spec, std::move(cc), rec);
    Flow* raw = flow.get();
    star.topo->host(src).AddFlow(std::move(flow));
    return raw;
  }

  HostNode& host(size_t i) { return star.topo->host(star.host_ids[i]); }
  uint32_t hid(size_t i) { return star.host_ids[i]; }

 private:
  uint64_t next_id_ = 1;
};

cc::CcPtr Fixed(int64_t window = std::numeric_limits<int64_t>::max() / 4,
                int64_t rate = kBps) {
  return std::make_unique<FixedCc>(window, rate);
}

TEST(HostTransport, SingleFlowCompletesNearIdealFct) {
  Harness h;
  sim::TimePs done_at = -1;
  h.host(1).set_flow_done_callback(
      [](const Flow&, sim::TimePs) { FAIL() << "wrong host"; });
  h.host(0).set_flow_done_callback(
      [&](const Flow&, sim::TimePs now) { done_at = now; });
  Flow* f = h.StartFlow(h.hid(0), h.hid(1), 100'000, Fixed());
  h.s->Run(sim::Ms(10));
  ASSERT_TRUE(f->done);
  EXPECT_EQ(done_at, f->finish_time);
  const sim::TimePs ideal =
      h.star.topo->IdealFct(h.hid(0), h.hid(1), 100'000);
  // IdealFct's size/bottleneck + baseRTT slightly overcounts (pipelining
  // overlaps the last packet's serialization), so allow a few % either way.
  EXPECT_GE(f->finish_time, ideal * 95 / 100);
  EXPECT_LE(f->finish_time, ideal * 11 / 10);  // sender-side FCT, <10% over
}

TEST(HostTransport, EveryDataPacketIsAcked) {
  Harness h;
  Flow* f = h.StartFlow(h.hid(0), h.hid(1), 50'000, Fixed());
  h.s->Run(sim::Ms(10));
  ASSERT_TRUE(f->done);
  // 50 packets sent, each ACKed individually (RoCEv2-style, §3.1).
  EXPECT_EQ(h.host(0).data_packets_sent(), 50u);
  EXPECT_EQ(h.host(0).acks_received(), 50u);
}

TEST(HostTransport, ReceiverStateTracksCumulativeBytes) {
  Harness h;
  Flow* f = h.StartFlow(h.hid(0), h.hid(1), 12'345, Fixed());
  h.s->Run(sim::Ms(10));
  ASSERT_TRUE(f->done);
  const HostNode::RxState* rx = h.host(1).FindRxState(f->spec().id);
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->rcv_nxt, 12'345u);  // conservation: receiver got every byte
  EXPECT_EQ(f->snd_una, 12'345u);
}

TEST(HostTransport, WindowLimitsInflightBytes) {
  Harness h;
  // Window of 4 packets on a long flow: inflight never exceeds it by more
  // than one MTU (the allowed overshoot of the `inflight < W` check).
  Flow* f = h.StartFlow(h.hid(0), h.hid(1), 1'000'000, Fixed(4'000));
  int64_t max_inflight = 0;
  for (int i = 0; i < 4000 && !f->done; ++i) {
    h.s->Run(h.s->now() + sim::Us(1));
    max_inflight = std::max(max_inflight, f->inflight_bytes());
  }
  h.s->Run(sim::Ms(100));
  EXPECT_TRUE(f->done);
  EXPECT_LE(max_inflight, 5'000);
  EXPECT_GT(max_inflight, 2'000);  // the window is actually used
}

TEST(HostTransport, PacingLimitsThroughput) {
  Harness h;
  // Pace at 10 Gbps on a 100 Gbps NIC: 1 MB should take ~800 us wire time.
  Flow* f = h.StartFlow(h.hid(0), h.hid(1), 1'000'000, Fixed(
      std::numeric_limits<int64_t>::max() / 4, 10'000'000'000));
  h.s->Run(sim::Ms(50));
  ASSERT_TRUE(f->done);
  const double sec = sim::ToSec(f->finish_time - f->spec().start_time);
  const double gbps = 1'000'000 * 8.0 / sec / 1e9;
  EXPECT_LT(gbps, 10.5);
  EXPECT_GT(gbps, 8.0);
}

TEST(HostTransport, TwoFlowsShareNicRoundRobin) {
  Harness h(3);
  Flow* f1 = h.StartFlow(h.hid(0), h.hid(1), 500'000, Fixed());
  Flow* f2 = h.StartFlow(h.hid(0), h.hid(2), 500'000, Fixed());
  h.s->Run(sim::Ms(20));
  ASSERT_TRUE(f1->done);
  ASSERT_TRUE(f2->done);
  // Both finish within ~the time one NIC needs for both (fair interleave):
  // neither should finish twice as late as the other.
  const double ratio = static_cast<double>(f1->finish_time) /
                       static_cast<double>(f2->finish_time);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

// Loss requires a fan-in (equal-speed links never queue 1:1), so the
// recovery tests run two senders into a shallow-buffer switch.
struct LossyOutcome {
  bool done0;
  bool done1;
  uint64_t drops;
  uint64_t sent;
  uint64_t rcv0;
  uint64_t rcv1;
};

LossyOutcome RunLossy(RecoveryMode mode, sim::TimePs horizon = sim::Ms(80)) {
  net::SwitchConfig sw;
  sw.pfc_enabled = false;
  sw.buffer_bytes = 8'000;  // tiny: forces drops under a 2:1 blast
  sw.egress_alpha = 1e9;
  Harness h(3, sw);
  Flow* f0 = h.StartFlow(h.hid(0), h.hid(2), 300'000, Fixed(), mode);
  Flow* f1 = h.StartFlow(h.hid(1), h.hid(2), 300'000, Fixed(), mode);
  h.s->Run(horizon);
  return LossyOutcome{
      f0->done,
      f1->done,
      h.star.topo->switch_node(h.star.switch_id).dropped_packets(),
      h.host(0).data_packets_sent() + h.host(1).data_packets_sent(),
      h.host(2).FindRxState(f0->spec().id)->rcv_nxt,
      h.host(2).FindRxState(f1->spec().id)->rcv_nxt};
}

TEST(HostTransport, GbnRecoversFromDrops) {
  const LossyOutcome o = RunLossy(RecoveryMode::kGoBackN);
  EXPECT_TRUE(o.done0);
  EXPECT_TRUE(o.done1);
  EXPECT_GT(o.drops, 0u);
  // Retransmissions: more packets sent than the flows strictly need.
  EXPECT_GT(o.sent, 600u);
  EXPECT_EQ(o.rcv0, 300'000u);
  EXPECT_EQ(o.rcv1, 300'000u);
}

TEST(HostTransport, IrnRecoversWithSelectiveRepeat) {
  const LossyOutcome o = RunLossy(RecoveryMode::kIrn);
  EXPECT_TRUE(o.done0);
  EXPECT_TRUE(o.done1);
  EXPECT_GT(o.drops, 0u);
  EXPECT_EQ(o.rcv0, 300'000u);
  EXPECT_EQ(o.rcv1, 300'000u);
}

TEST(HostTransport, IrnRetransmitsLessThanGbn) {
  const LossyOutcome gbn = RunLossy(RecoveryMode::kGoBackN);
  const LossyOutcome irn = RunLossy(RecoveryMode::kIrn);
  ASSERT_TRUE(gbn.done0 && gbn.done1 && irn.done0 && irn.done1);
  // GBN resends everything past a loss; IRN only the losses.
  EXPECT_LT(irn.sent, gbn.sent);
}

TEST(HostTransport, RtoRetriesWhenEverythingIsLost) {
  net::SwitchConfig sw;
  sw.pfc_enabled = false;
  sw.buffer_bytes = 500;  // below one packet: the switch drops everything
  sw.egress_alpha = 1e9;
  Harness h(2, sw);
  Flow* f = h.StartFlow(h.hid(0), h.hid(1), 5'000, Fixed(6'000));
  h.s->Run(sim::Ms(5));
  EXPECT_FALSE(f->done);
  const uint64_t sent_once = h.host(0).data_packets_sent();
  EXPECT_GE(sent_once, 5u);
  h.s->Run(sim::Ms(5) + h.host(0).config().rto * 3);
  // RTO fired and the window rewound: the same bytes were retried.
  EXPECT_GT(h.host(0).data_packets_sent(), sent_once);
}

TEST(HostTransport, CnpGeneratedForMarkedPackets) {
  net::SwitchConfig sw;
  sw.red.enabled = true;
  sw.red.kmin_bytes = 0;
  sw.red.kmax_bytes = 0;  // mark every ECN-capable packet
  sw.red.pmax = 1.0;
  Harness h(2, sw);
  cc::CcConfig cfg;
  cfg.scheme = "dcqcn";
  cc::CcContext ctx;
  ctx.nic_bps = kBps;
  ctx.base_rtt = h.star.topo->MaxBaseRtt();
  ctx.simulator = h.s;
  Flow* f = h.StartFlow(h.hid(0), h.hid(1), 2'000'000,
                        cc::MakeCc(cfg, ctx));
  h.s->Run(sim::Ms(5));
  // Constant marking drives DCQCN's rate down hard.
  EXPECT_LT(f->cc().rate_bps(), kBps / 2);
}

TEST(HostTransport, FlowsStartAtTheirStartTime) {
  Harness h;
  Flow* f = h.StartFlow(h.hid(0), h.hid(1), 1'000, Fixed(),
                        RecoveryMode::kGoBackN, sim::Us(500));
  h.s->Run(sim::Us(400));
  EXPECT_EQ(h.host(0).data_packets_sent(), 0u);
  h.s->Run(sim::Ms(2));
  ASSERT_TRUE(f->done);
  EXPECT_GE(f->finish_time, sim::Us(500));
}

TEST(HostTransport, SubMtuFlowIsOnePacket) {
  Harness h;
  Flow* f = h.StartFlow(h.hid(0), h.hid(1), 137, Fixed());
  h.s->Run(sim::Ms(1));
  ASSERT_TRUE(f->done);
  EXPECT_EQ(h.host(0).data_packets_sent(), 1u);
}

TEST(HostTransport, ManySmallFlowsAllComplete) {
  Harness h(4);
  std::vector<Flow*> flows;
  for (int i = 0; i < 60; ++i) {
    flows.push_back(h.StartFlow(h.hid(i % 3), h.hid(3), 2'000 + i * 37,
                                Fixed(), RecoveryMode::kGoBackN,
                                sim::Us(i * 3)));
  }
  h.s->Run(sim::Ms(20));
  for (Flow* f : flows) EXPECT_TRUE(f->done);
}

}  // namespace
}  // namespace hpcc::host
