// Tests for the §4.3 reciprocal lookup table.
#include <gtest/gtest.h>

#include <cmath>

#include "core/div_table.h"

namespace hpcc::core {
namespace {

TEST(DivTable, ExactForSmallDivisors) {
  DivTable t(0.01, 1u << 22);
  // n=1 and n=2 are always stored exactly (the ladder starts dense).
  EXPECT_DOUBLE_EQ(t.Reciprocal(1), 1.0);
}

TEST(DivTable, RelativeErrorBounded) {
  const double eps = 0.01;
  DivTable t(eps, 1u << 20);
  for (uint32_t n = 1; n <= (1u << 20); n = n < 64 ? n + 1 : n * 17 / 16) {
    const double approx = t.Reciprocal(n);
    const double exact = 1.0 / n;
    // The stored reciprocal overestimates by at most eps/(1-eps) relatively
    // (the lookup rounds the divisor down to the previous ladder entry).
    EXPECT_GE(approx, exact * (1 - 1e-12)) << n;
    EXPECT_LE(approx, exact / (1 - eps) + 1e-15) << n;
  }
}

TEST(DivTable, TableIsCompact) {
  // Geometric spacing: entry count ~ log(n_max)/eps, i.e. thousands of
  // entries for eps=0.5% — the paper reports ~10 KB for n up to 2^22.
  DivTable t(0.005, 1u << 22);
  EXPECT_LT(t.table_entries(), 4000u);
  EXPECT_GT(t.table_entries(), 1000u);
}

class DivTableDivide : public ::testing::TestWithParam<double> {};

TEST_P(DivTableDivide, MatchesFloatingPointWithinEps) {
  const double eps = 0.005;
  DivTable t(eps);
  const double d = GetParam();
  for (double x : {1.0, 1e3, 5.4e4, 9.99e6, 1e9}) {
    const double got = t.Divide(x, d);
    const double want = x / d;
    EXPECT_NEAR(got, want, want * (eps + 1e-4))
        << "x=" << x << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Divisors, DivTableDivide,
                         ::testing::Values(0.0317, 0.5, 0.95, 1.0, 1.0526,
                                           2.75, 13.0, 997.0, 65536.0,
                                           3.1e6));

TEST(DivTable, HardwareFootprintMatchesPaperOrder) {
  // §4.3: "about 10KB" for the full ladder. We accept the same order of
  // magnitude with the default construction.
  DivTable t(0.005, 1u << 22);
  EXPECT_LT(t.ApproxBytes(), 64u * 1024u);
}

TEST(DivTable, MonotoneNonIncreasingReciprocal) {
  DivTable t(0.01, 100'000);
  double prev = t.Reciprocal(1);
  for (uint32_t n = 2; n < 100'000; n += 97) {
    const double r = t.Reciprocal(n);
    EXPECT_LE(r, prev + 1e-15);
    prev = r;
  }
}

}  // namespace
}  // namespace hpcc::core
