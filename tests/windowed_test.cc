// Unit tests for the "+win" wrapper (§5.1).
#include <gtest/gtest.h>

#include "cc/dcqcn.h"
#include "cc/timely.h"
#include "cc/windowed.h"
#include "sim/time.h"

namespace hpcc::cc {
namespace {

constexpr int64_t kNic = 25'000'000'000;
constexpr sim::TimePs kT = sim::Us(8);

CcContext Ctx() {
  CcContext ctx;
  ctx.nic_bps = kNic;
  ctx.base_rtt = kT;
  ctx.mtu_bytes = 1000;
  return ctx;
}

TEST(Windowed, WindowIsRateTimesT) {
  auto cc = WindowedCc(std::make_unique<DcqcnCc>(Ctx(), DcqcnParams{}), Ctx());
  // At line rate: W = B*T = 25e9/8 * 8e-6 = 25000 bytes.
  EXPECT_EQ(cc.window_bytes(), 25'000);
}

TEST(Windowed, WindowShrinksWithRate) {
  auto cc = WindowedCc(std::make_unique<DcqcnCc>(Ctx(), DcqcnParams{}), Ctx());
  cc.OnCnp(sim::Us(100));  // halves the inner rate
  EXPECT_NEAR(static_cast<double>(cc.window_bytes()), 12'500.0, 50.0);
}

TEST(Windowed, WindowFlooredAtOneMtu) {
  auto cc = WindowedCc(std::make_unique<DcqcnCc>(Ctx(), DcqcnParams{}), Ctx());
  for (int i = 0; i < 300; ++i) cc.OnCnp(sim::Us(100) + i * sim::Us(100));
  EXPECT_GE(cc.window_bytes(), 1000);
}

TEST(Windowed, DelegatesRateAndSignals) {
  auto cc = WindowedCc(std::make_unique<DcqcnCc>(Ctx(), DcqcnParams{}), Ctx());
  EXPECT_EQ(cc.rate_bps(), kNic);
  EXPECT_TRUE(cc.wants_ecn());
  EXPECT_FALSE(cc.wants_int());
  EXPECT_EQ(cc.name(), "dcqcn+win");
}

TEST(Windowed, TimelyVariantName) {
  auto cc =
      WindowedCc(std::make_unique<TimelyCc>(Ctx(), TimelyParams{}), Ctx());
  EXPECT_EQ(cc.name(), "timely+win");
  EXPECT_EQ(cc.window_bytes(), 25'000);
}

TEST(Windowed, DelegatesAckToInner) {
  auto inner = std::make_unique<TimelyCc>(Ctx(), TimelyParams{});
  TimelyCc* raw = inner.get();
  WindowedCc cc(std::move(inner), Ctx());
  AckInfo a;
  a.rtt = sim::Us(100);
  cc.OnAck(a);
  a.rtt = sim::Us(1000);
  cc.OnAck(a);
  EXPECT_LT(raw->rate_bps(), kNic);  // inner reacted through the wrapper
  EXPECT_EQ(cc.window_bytes(),
            static_cast<int64_t>(static_cast<double>(raw->rate_bps()) / 8.0 *
                                 sim::ToSec(kT)));
}

}  // namespace
}  // namespace hpcc::cc
