// Unit tests for the per-port round-robin flow scheduler (§4.2).
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "host/scheduler.h"

namespace hpcc::host {
namespace {

class StubCc : public cc::CongestionControl {
 public:
  explicit StubCc(int64_t window) : window_(window) {}
  void OnAck(const cc::AckInfo&) override {}
  int64_t window_bytes() const override { return window_; }
  int64_t rate_bps() const override { return 100'000'000'000; }
  std::string name() const override { return "stub"; }
  void set_window(int64_t w) { window_ = w; }

 private:
  int64_t window_;
};

std::unique_ptr<Flow> MakeFlow(uint64_t id, uint64_t size, int64_t window,
                               RecoveryMode mode = RecoveryMode::kGoBackN) {
  FlowSpec spec;
  spec.id = id;
  spec.src = 0;
  spec.dst = 1;
  spec.size_bytes = size;
  auto f = std::make_unique<Flow>(spec, std::make_unique<StubCc>(window),
                                  mode);
  f->started = true;
  return f;
}

TEST(FlowScheduler, PicksEligibleFlow) {
  FlowScheduler s;
  auto f = MakeFlow(1, 10'000, 100'000);
  s.Add(f.get());
  EXPECT_EQ(s.PickEligible(0), f.get());
}

TEST(FlowScheduler, RoundRobinAlternates) {
  FlowScheduler s;
  auto f1 = MakeFlow(1, 1'000'000, 1'000'000);
  auto f2 = MakeFlow(2, 1'000'000, 1'000'000);
  s.Add(f1.get());
  s.Add(f2.get());
  Flow* first = s.PickEligible(0);
  Flow* second = s.PickEligible(0);
  Flow* third = s.PickEligible(0);
  EXPECT_NE(first, second);
  EXPECT_EQ(first, third);
}

TEST(FlowScheduler, SkipsUnstartedAndDoneFlows) {
  FlowScheduler s;
  auto f1 = MakeFlow(1, 10'000, 100'000);
  f1->started = false;
  auto f2 = MakeFlow(2, 10'000, 100'000);
  f2->done = true;
  s.Add(f1.get());
  s.Add(f2.get());
  EXPECT_EQ(s.PickEligible(0), nullptr);
}

TEST(FlowScheduler, RespectsWindow) {
  FlowScheduler s;
  auto f = MakeFlow(1, 100'000, /*window=*/5'000);
  f->snd_nxt = 5'000;  // inflight == window
  s.Add(f.get());
  EXPECT_EQ(s.PickEligible(0), nullptr);
  f->snd_una = 1;  // one byte acked: window strictly open again
  EXPECT_EQ(s.PickEligible(0), f.get());
}

TEST(FlowScheduler, RespectsPacing) {
  FlowScheduler s;
  auto f = MakeFlow(1, 100'000, 1'000'000);
  f->next_tx_time = sim::Us(10);
  s.Add(f.get());
  EXPECT_EQ(s.PickEligible(sim::Us(9)), nullptr);
  EXPECT_EQ(s.PickEligible(sim::Us(10)), f.get());
}

TEST(FlowScheduler, NextWakeTimeIsEarliestPacedFlow) {
  FlowScheduler s;
  auto f1 = MakeFlow(1, 100'000, 1'000'000);
  f1->next_tx_time = sim::Us(30);
  auto f2 = MakeFlow(2, 100'000, 1'000'000);
  f2->next_tx_time = sim::Us(20);
  s.Add(f1.get());
  s.Add(f2.get());
  EXPECT_EQ(s.NextWakeTime(0), sim::Us(20));
  // A window-blocked flow does not contribute a wake time.
  f2->snd_nxt = 1'000'000;
  EXPECT_EQ(s.NextWakeTime(0), sim::Us(30));
}

TEST(FlowScheduler, NoWakeWhenNothingSendable) {
  FlowScheduler s;
  auto f = MakeFlow(1, 10'000, 100'000);
  f->snd_nxt = 10'000;  // everything sent
  s.Add(f.get());
  EXPECT_EQ(s.NextWakeTime(0), -1);
}

TEST(FlowScheduler, IrnRetransmitQueueCountsAsSendable) {
  FlowScheduler s;
  auto f = MakeFlow(1, 10'000, 100'000, RecoveryMode::kIrn);
  f->snd_nxt = 10'000;  // all new data sent...
  f->irn_rtx_queue.insert(2'000);  // ...but a loss wants retransmission
  s.Add(f.get());
  EXPECT_EQ(s.PickEligible(0), f.get());
}

TEST(FlowScheduler, IrnFixedWindowCapsInflight) {
  FlowScheduler s;
  auto f = MakeFlow(1, 1'000'000, /*cc window=*/1'000'000,
                    RecoveryMode::kIrn);
  f->irn_window_bytes = 4'000;
  f->irn_inflight_bytes = 4'000;
  s.Add(f.get());
  EXPECT_EQ(s.PickEligible(0), nullptr);
  f->irn_inflight_bytes = 3'000;
  EXPECT_EQ(s.PickEligible(0), f.get());
}

TEST(FlowScheduler, CompactRemovesDoneFlows) {
  FlowScheduler s;
  auto f1 = MakeFlow(1, 10'000, 100'000);
  auto f2 = MakeFlow(2, 10'000, 100'000);
  s.Add(f1.get());
  s.Add(f2.get());
  f1->done = true;
  s.Compact();
  EXPECT_EQ(s.active_flows(), 1u);
  EXPECT_EQ(s.PickEligible(0), f2.get());
}

TEST(FlowScheduler, CompactAllDone) {
  FlowScheduler s;
  auto f1 = MakeFlow(1, 10'000, 100'000);
  f1->done = true;
  s.Add(f1.get());
  s.Compact();
  EXPECT_EQ(s.active_flows(), 0u);
  EXPECT_EQ(s.PickEligible(0), nullptr);
  EXPECT_EQ(s.NextWakeTime(0), -1);
}

}  // namespace
}  // namespace hpcc::host
