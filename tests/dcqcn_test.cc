// Unit tests for the DCQCN baseline.
#include <gtest/gtest.h>

#include "cc/dcqcn.h"
#include "sim/simulator.h"

namespace hpcc::cc {
namespace {

constexpr int64_t kNic = 25'000'000'000;

CcContext Ctx(sim::Simulator* s = nullptr) {
  CcContext ctx;
  ctx.nic_bps = kNic;
  ctx.base_rtt = sim::Us(9);
  ctx.simulator = s;
  return ctx;
}

TEST(Dcqcn, StartsAtLineRate) {
  DcqcnCc cc(Ctx(), DcqcnParams{});
  EXPECT_EQ(cc.rate_bps(), kNic);
  EXPECT_DOUBLE_EQ(cc.alpha(), 1.0);
}

TEST(Dcqcn, CnpCutsRateByAlphaHalf) {
  DcqcnParams p;
  DcqcnCc cc(Ctx(), p);
  cc.OnCnp(sim::Us(100));
  // alpha' = (1-g)*1 + g = 1, so the first cut halves the rate.
  EXPECT_NEAR(cc.current_rate_bps(), kNic * 0.5, kNic * 0.001);
  EXPECT_NEAR(cc.target_rate_bps(), kNic, kNic * 0.001);
}

TEST(Dcqcn, TdGatesConsecutiveDecreases) {
  DcqcnParams p;
  p.min_dec_interval = sim::Us(50);
  DcqcnCc cc(Ctx(), p);
  cc.OnCnp(sim::Us(100));
  const double r1 = cc.current_rate_bps();
  cc.OnCnp(sim::Us(110));  // within Td: ignored
  EXPECT_DOUBLE_EQ(cc.current_rate_bps(), r1);
  cc.OnCnp(sim::Us(151));  // past Td: applies
  EXPECT_LT(cc.current_rate_bps(), r1);
}

TEST(Dcqcn, SmallTdAllowsFasterDecrease) {
  DcqcnParams fast;
  fast.min_dec_interval = sim::Us(4);
  DcqcnParams slow;
  slow.min_dec_interval = sim::Us(50);
  DcqcnCc a(Ctx(), fast);
  DcqcnCc b(Ctx(), slow);
  for (int i = 0; i < 5; ++i) {
    a.OnCnp(sim::Us(100 + 10 * i));
    b.OnCnp(sim::Us(100 + 10 * i));
  }
  EXPECT_LT(a.current_rate_bps(), b.current_rate_bps());
}

TEST(Dcqcn, AlphaDecaysOnTimer) {
  DcqcnCc cc(Ctx(), DcqcnParams{});
  cc.OnCnp(sim::Us(100));
  const double a0 = cc.alpha();
  cc.AlphaTimerExpired(sim::Us(155));
  EXPECT_LT(cc.alpha(), a0);
  EXPECT_NEAR(cc.alpha(), a0 * (1.0 - 1.0 / 256.0), 1e-12);
}

TEST(Dcqcn, FastRecoveryHalvesGapToTarget) {
  DcqcnCc cc(Ctx(), DcqcnParams{});
  cc.OnCnp(sim::Us(100));
  const double rt = cc.target_rate_bps();
  const double rc0 = cc.current_rate_bps();
  cc.RateTimerExpired(sim::Us(200));
  EXPECT_NEAR(cc.current_rate_bps(), (rt + rc0) / 2, 1.0);
  // Five fast-recovery events converge Rc nearly to Rt without raising Rt.
  for (int i = 0; i < 4; ++i) cc.RateTimerExpired(sim::Us(300 + i));
  EXPECT_NEAR(cc.current_rate_bps(), rt, rt * 0.04);
  EXPECT_NEAR(cc.target_rate_bps(), rt, 1.0);
}

TEST(Dcqcn, AdditiveIncreaseAfterFastRecovery) {
  DcqcnParams p;
  DcqcnCc cc(Ctx(), p);
  // Two decreases pull Rt well below line rate so increases are observable.
  cc.OnCnp(sim::Us(100));
  cc.OnCnp(sim::Us(200));
  for (int i = 0; i < 5; ++i) cc.RateTimerExpired(sim::Us(300 + i));
  const double rt_before = cc.target_rate_bps();
  cc.RateTimerExpired(sim::Us(400));  // stage 6: additive
  EXPECT_NEAR(cc.target_rate_bps() - rt_before,
              static_cast<double>(p.rai_bps_at_25g), 1.0);
}

TEST(Dcqcn, ByteCounterTriggersIncrease) {
  DcqcnParams p;
  p.byte_counter = 100'000;
  DcqcnCc cc(Ctx(), p);
  cc.OnCnp(sim::Us(100));
  const double r0 = cc.current_rate_bps();
  EXPECT_EQ(cc.byte_stage(), 0);
  cc.OnSent(60'000, sim::Us(110));
  EXPECT_EQ(cc.byte_stage(), 0);  // not yet
  cc.OnSent(60'000, sim::Us(120));
  EXPECT_EQ(cc.byte_stage(), 1);
  EXPECT_GT(cc.current_rate_bps(), r0);
}

TEST(Dcqcn, HyperIncreaseWhenBothCountersPastF) {
  DcqcnParams p;
  p.byte_counter = 1000;
  DcqcnCc cc(Ctx(), p);
  // Pull the target rate far below line so hyper steps are not clamped.
  for (int i = 0; i < 4; ++i) cc.OnCnp(sim::Us(100 + 100 * i));
  // Drive both stages past F=5.
  for (int i = 0; i < 6; ++i) cc.RateTimerExpired(sim::Us(600 + i));
  cc.OnSent(6000, sim::Us(700));
  ASSERT_GT(cc.timer_stage(), 5);
  ASSERT_GT(cc.byte_stage(), 5);
  const double rt0 = cc.target_rate_bps();
  cc.RateTimerExpired(sim::Us(800));
  EXPECT_NEAR(cc.target_rate_bps() - rt0,
              static_cast<double>(p.rhai_bps_at_25g), 1.0)
      << "hyper increase step";
}

TEST(Dcqcn, CnpResetsIncreaseStages) {
  DcqcnCc cc(Ctx(), DcqcnParams{});
  cc.OnCnp(sim::Us(100));
  for (int i = 0; i < 7; ++i) cc.RateTimerExpired(sim::Us(200 + i));
  EXPECT_GT(cc.timer_stage(), 5);
  cc.OnCnp(sim::Us(1000));
  EXPECT_EQ(cc.timer_stage(), 0);
  EXPECT_EQ(cc.byte_stage(), 0);
}

TEST(Dcqcn, RateNeverBelowFloorOrAboveLine) {
  DcqcnCc cc(Ctx(), DcqcnParams{});
  for (int i = 0; i < 200; ++i) cc.OnCnp(sim::Us(100 + i * 100));
  EXPECT_GE(cc.rate_bps(), static_cast<int64_t>(kNic * 0.001));
  for (int i = 0; i < 500; ++i) cc.RateTimerExpired(sim::Ms(1) + i);
  EXPECT_LE(cc.rate_bps(), kNic);
}

TEST(Dcqcn, SelfSchedulesTimersOnSimulator) {
  sim::Simulator s;
  DcqcnParams p;
  p.alpha_timer = sim::Us(55);
  p.rate_inc_timer = sim::Us(300);
  auto cc = std::make_unique<DcqcnCc>(Ctx(&s), p);
  cc->OnCnp(s.now());
  const double a0 = cc->alpha();
  s.Run(sim::Us(60));
  EXPECT_LT(cc->alpha(), a0);  // alpha timer fired
  s.Run(sim::Us(310));
  EXPECT_GE(cc->timer_stage(), 1);  // rate timer fired
  cc->OnFlowDone();
  const uint64_t events_before = s.events_executed();
  s.Run(sim::Ms(10));
  // Timers cancelled: nothing keeps firing forever.
  EXPECT_LE(s.events_executed() - events_before, 2u);
}

TEST(Dcqcn, WindowEffectivelyUnlimited) {
  DcqcnCc cc(Ctx(), DcqcnParams{});
  EXPECT_GT(cc.window_bytes(), int64_t{1} << 50);
  EXPECT_TRUE(cc.wants_ecn());
  EXPECT_FALSE(cc.wants_int());
}

}  // namespace
}  // namespace hpcc::cc
