// Tests for flow-size CDFs and the Poisson/incast traffic generators.
#include <gtest/gtest.h>

#include <set>

#include "core/hash.h"
#include "sim/simulator.h"
#include "workload/flow_gen.h"
#include "workload/size_cdf.h"

namespace hpcc::workload {
namespace {

// Regression for the affine sub-seed bug: `seed * 31 + 1000 + index` put
// seed 1/index 31 and seed 2/index 0 on the same generator RNG stream.
// DeriveSeed must keep every (seed, stream) pair distinct across the ranges
// the scenario layer uses (incast events 1000+, load phases 2000+, the
// workload incast stream 7).
TEST(DeriveSeed, NoCollisionsAcrossSeedStreamGrid) {
  EXPECT_NE(core::DeriveSeed(1, 1000 + 31), core::DeriveSeed(2, 1000 + 0));
  std::set<uint64_t> seen;
  size_t total = 0;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    seen.insert(core::DeriveSeed(seed, 7));
    ++total;
    for (uint64_t index = 0; index < 64; ++index) {
      seen.insert(core::DeriveSeed(seed, 1000 + index));
      seen.insert(core::DeriveSeed(seed, 2000 + index));
      total += 2;
    }
  }
  EXPECT_EQ(seen.size(), total);
}

TEST(SizeCdf, RejectsMalformed) {
  EXPECT_THROW(SizeCdf({{100, 0.5}, {200, 1.0}}), std::invalid_argument);
  EXPECT_THROW(SizeCdf({{100, 0.0}, {200, 0.9}}), std::invalid_argument);
  EXPECT_THROW(SizeCdf({{100, 0.0}, {50, 1.0}}), std::invalid_argument);
}

TEST(SizeCdf, FixedAlwaysReturnsSameSize) {
  SizeCdf cdf = SizeCdf::Fixed(500'000);
  sim::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(cdf.Sample(rng), 500'000u);
  EXPECT_DOUBLE_EQ(cdf.MeanBytes(), 500'000.0);
}

TEST(SizeCdf, CdfIsMonotone) {
  SizeCdf cdf = SizeCdf::WebSearch();
  double prev = 0;
  for (uint64_t b : {100ull, 1000ull, 10'000ull, 100'000ull, 1'000'000ull,
                     10'000'000ull, 50'000'000ull}) {
    const double c = cdf.Cdf(b);
    EXPECT_GE(c, prev);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(cdf.Cdf(100'000'000), 1.0);
}

class CdfSampling : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CdfSampling, SampleMeanMatchesAnalyticMean) {
  // Property: the empirical mean of samples converges to MeanBytes().
  for (const SizeCdf& cdf : {SizeCdf::WebSearch(), SizeCdf::FbHadoop()}) {
    sim::Rng rng(GetParam());
    const int n = 200'000;
    double sum = 0;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(cdf.Sample(rng));
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, cdf.MeanBytes(), cdf.MeanBytes() * 0.03);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfSampling, ::testing::Values(1, 7, 42));

TEST(SizeCdf, WebSearchShape) {
  SizeCdf cdf = SizeCdf::WebSearch();
  // Heavy tail: mean well above the median sizes.
  EXPECT_GT(cdf.MeanBytes(), 1e6);
  EXPECT_LT(cdf.MeanBytes(), 3e6);
  EXPECT_NEAR(cdf.Cdf(30'000), 0.30, 0.01);
}

TEST(SizeCdf, FbHadoopMostlyTiny) {
  SizeCdf cdf = SizeCdf::FbHadoop();
  // §5.3: 90% of FB_Hadoop flows are shorter than 120 KB.
  EXPECT_GE(cdf.Cdf(120'000), 0.90);
  EXPECT_GE(cdf.Cdf(1'000), 0.75);
}

TEST(SizeCdf, SamplesWithinSupport) {
  SizeCdf cdf = SizeCdf::FbHadoop();
  sim::Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t s = cdf.Sample(rng);
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 10'000'000u);
  }
}

TEST(Poisson, AchievesTargetLoad) {
  sim::Simulator s;
  std::vector<uint32_t> hosts{0, 1, 2, 3, 4, 5, 6, 7};
  PoissonOptions o;
  o.load = 0.5;
  o.host_bps = 100'000'000'000;
  o.end = sim::Ms(50);
  o.seed = 11;
  uint64_t total_bytes = 0;
  uint64_t flows = 0;
  PoissonGenerator gen(&s, hosts, SizeCdf::WebSearch(), o,
                       [&](uint32_t, uint32_t, uint64_t size, sim::TimePs) {
                         total_bytes += size;
                         ++flows;
                       });
  gen.Start();
  s.Run();
  // Offered load = bytes / time vs aggregate capacity.
  const double offered_Bps =
      static_cast<double>(total_bytes) / sim::ToSec(sim::Ms(50));
  const double capacity_Bps = 8 * 100e9 / 8.0;
  EXPECT_NEAR(offered_Bps / capacity_Bps, 0.5, 0.08);
  EXPECT_GT(flows, 100u);
}

TEST(Poisson, SrcNeverEqualsDst) {
  sim::Simulator s;
  std::vector<uint32_t> hosts{10, 20, 30};
  PoissonOptions o;
  o.load = 0.3;
  o.host_bps = 25'000'000'000;
  o.end = sim::Ms(20);
  PoissonGenerator gen(&s, hosts, SizeCdf::FbHadoop(), o,
                       [&](uint32_t src, uint32_t dst, uint64_t, sim::TimePs) {
                         EXPECT_NE(src, dst);
                       });
  gen.Start();
  s.Run();
}

TEST(Poisson, MaxFlowsStopsGeneration) {
  sim::Simulator s;
  std::vector<uint32_t> hosts{0, 1};
  PoissonOptions o;
  o.load = 0.9;
  o.host_bps = 100'000'000'000;
  o.end = sim::Sec(10);
  o.max_flows = 25;
  uint64_t flows = 0;
  PoissonGenerator gen(&s, hosts, SizeCdf::FbHadoop(), o,
                       [&](uint32_t, uint32_t, uint64_t, sim::TimePs) {
                         ++flows;
                       });
  gen.Start();
  s.Run();
  EXPECT_EQ(flows, 25u);
}

TEST(Incast, EmitsFanInDistinctSenders) {
  sim::Simulator s;
  std::vector<uint32_t> hosts;
  for (uint32_t i = 0; i < 100; ++i) hosts.push_back(i);
  IncastOptions o;
  o.fan_in = 60;
  o.flow_bytes = 500'000;
  o.first_event = sim::Us(10);
  o.period = 0;  // single event
  std::set<uint32_t> senders;
  std::set<uint32_t> receivers;
  IncastGenerator gen(&s, hosts, o,
                      [&](uint32_t src, uint32_t dst, uint64_t size,
                          sim::TimePs at) {
                        EXPECT_EQ(size, 500'000u);
                        EXPECT_EQ(at, sim::Us(10));
                        EXPECT_NE(src, dst);
                        senders.insert(src);
                        receivers.insert(dst);
                      });
  gen.Start();
  s.Run();
  EXPECT_EQ(senders.size(), 60u);  // distinct senders
  EXPECT_EQ(receivers.size(), 1u);
  EXPECT_EQ(gen.events_emitted(), 1u);
}

TEST(Incast, PeriodicEventsUntilEnd) {
  sim::Simulator s;
  std::vector<uint32_t> hosts;
  for (uint32_t i = 0; i < 20; ++i) hosts.push_back(i);
  IncastOptions o;
  o.fan_in = 5;
  o.first_event = sim::Us(100);
  o.period = sim::Ms(1);
  o.end = sim::Ms(5);
  uint64_t flows = 0;
  IncastGenerator gen(&s, hosts, o,
                      [&](uint32_t, uint32_t, uint64_t, sim::TimePs) {
                        ++flows;
                      });
  gen.Start();
  s.Run();
  // Events at 0.1, 1.1, 2.1, 3.1, 4.1 ms.
  EXPECT_EQ(gen.events_emitted(), 5u);
  EXPECT_EQ(flows, 25u);
}

TEST(Incast, FixedReceiver) {
  sim::Simulator s;
  std::vector<uint32_t> hosts{0, 1, 2, 3, 4, 5, 6, 7};
  IncastOptions o;
  o.fan_in = 4;
  o.period = sim::Us(100);
  o.end = sim::Ms(1);
  o.fixed_receiver = 3;  // index into hosts
  IncastGenerator gen(&s, hosts, o,
                      [&](uint32_t src, uint32_t dst, uint64_t, sim::TimePs) {
                        EXPECT_EQ(dst, 3u);
                        EXPECT_NE(src, 3u);
                      });
  gen.Start();
  s.Run();
  EXPECT_GT(gen.events_emitted(), 5u);
}

}  // namespace
}  // namespace hpcc::workload
