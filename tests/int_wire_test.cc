// Tests for the Fig. 7 wire encoding: bit packing, wrap-safe deltas and the
// fidelity of quantized txRate reconstruction.
#include <gtest/gtest.h>

#include "core/int_wire.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace hpcc::core {
namespace {

IntHop Hop(int64_t bps, sim::TimePs ts, uint64_t tx, int64_t qlen) {
  IntHop h;
  h.bandwidth_bps = bps;
  h.ts = ts;
  h.tx_bytes = tx;
  h.qlen_bytes = qlen;
  return h;
}

TEST(IntWire, SpeedEnumRoundTrips) {
  for (int64_t bps : {10'000'000'000LL, 25'000'000'000LL, 40'000'000'000LL,
                      50'000'000'000LL, 100'000'000'000LL, 200'000'000'000LL,
                      400'000'000'000LL}) {
    EXPECT_EQ(BpsFromSpeed(SpeedFromBps(bps)), bps) << bps;
  }
}

TEST(IntWire, EncodeDecodeRoundTrip) {
  const IntHop h = Hop(100'000'000'000, sim::Us(123), 1'000'000, 80'000);
  const WireHop w = DecodeHop(EncodeHop(h));
  EXPECT_EQ(w.speed, PortSpeed::k100G);
  EXPECT_EQ(w.ts_ns, 123'000u);
  EXPECT_EQ(w.tx_units, 1'000'000u / 128u);
  EXPECT_EQ(w.qlen_units, 80'000u / 80u);
}

TEST(IntWire, QlenSaturatesInsteadOfWrapping) {
  const IntHop h = Hop(100'000'000'000, 0, 0, 100'000'000);  // 100 MB queue
  const WireHop w = DecodeHop(EncodeHop(h));
  EXPECT_EQ(w.qlen_units, kQlenMask);
  EXPECT_EQ(QlenBytes(w.qlen_units), static_cast<int64_t>(kQlenMask) * 80);
}

TEST(IntWire, TsDeltaAcrossWrap) {
  // 24-bit ns counter: wrap at ~16.78 ms.
  const uint32_t before = kTsMask - 100;  // 100 ns before wrap
  const uint32_t after = 50;              // 50 ns after wrap
  EXPECT_EQ(TsDeltaNs(after, before), 151);
}

TEST(IntWire, TxBytesDeltaAcrossWrap) {
  const uint32_t before = kTxMask - 2;  // 2 units before wrap
  const uint32_t after = 5;
  EXPECT_EQ(TxBytesDelta(after, before), (2 + 5 + 1) * 128);
}

TEST(IntWire, DeltasOfEqualValuesAreZero) {
  EXPECT_EQ(TsDeltaNs(777, 777), 0);
  EXPECT_EQ(TxBytesDelta(42, 42), 0);
}

TEST(IntWire, WireTxRateMatchesFullPrecision) {
  // A port sending at exactly 73 Gbps for 10 us.
  const double rate_bps = 73e9;
  const sim::TimePs dt = sim::Us(10);
  const uint64_t bytes =
      static_cast<uint64_t>(rate_bps / 8.0 * sim::ToSec(dt));
  const IntHop a = Hop(100'000'000'000, sim::Us(100), 50'000'000, 0);
  const IntHop b =
      Hop(100'000'000'000, sim::Us(100) + dt, 50'000'000 + bytes, 0);
  const double wire = WireTxRateBps(a, b);
  // Quantization: 128-byte tx units over 10 us (91 KB) -> ~0.2% error.
  EXPECT_NEAR(wire, rate_bps, rate_bps * 0.01);
}

class IntWireRateProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntWireRateProperty, RandomRatesReconstructWithinTolerance) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    const double rate = 1e9 + rng.Uniform() * 399e9;  // 1..400 Gbps
    const sim::TimePs dt = sim::Us(1 + rng.UniformInt(0, 49));
    const sim::TimePs t0 = sim::Us(rng.UniformInt(0, 1'000'000));
    const uint64_t tx0 = static_cast<uint64_t>(rng.Uniform() * 1e15);
    const uint64_t bytes =
        static_cast<uint64_t>(rate / 8.0 * sim::ToSec(dt));
    const IntHop a = Hop(400'000'000'000, t0, tx0, 0);
    const IntHop b = Hop(400'000'000'000, t0 + dt, tx0 + bytes, 0);
    const double wire = WireTxRateBps(a, b);
    // Error sources: 128B tx quantization + 1ns ts quantization. For gaps
    // of >= 1us the combined relative error stays small.
    EXPECT_NEAR(wire, rate, rate * 0.02 + 2e9)
        << "rate=" << rate << " dt=" << dt;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntWireRateProperty,
                         ::testing::Values(1, 2, 3, 7));

TEST(IntWire, WireWordsAreDistinctAcrossFields) {
  const uint64_t w1 = EncodeHop(Hop(100'000'000'000, sim::Us(1), 1280, 160));
  const uint64_t w2 = EncodeHop(Hop(100'000'000'000, sim::Us(1), 1280, 240));
  const uint64_t w3 = EncodeHop(Hop(100'000'000'000, sim::Us(2), 1280, 160));
  const uint64_t w4 = EncodeHop(Hop(400'000'000'000, sim::Us(1), 1280, 160));
  EXPECT_NE(w1, w2);
  EXPECT_NE(w1, w3);
  EXPECT_NE(w1, w4);
}

}  // namespace
}  // namespace hpcc::core
