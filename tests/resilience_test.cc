// Failure injection: link failures, rerouting, disconnection, and HPCC's
// path-change handling (§4.1's pathID mechanism end to end).
#include <gtest/gtest.h>

#include "runner/experiment.h"
#include "topo/fattree.h"

namespace hpcc::runner {
namespace {

// Builds a mini fattree experiment plus the link index of an Agg<->Core
// link, whose failure forces cross-pod flows onto other cores.
struct FailureFixture {
  explicit FailureFixture(const std::string& scheme) {
    ExperimentConfig cfg;
    cfg.topology = TopologyKind::kFatTree;
    cfg.fattree.pods = 2;
    cfg.fattree.tors_per_pod = 1;
    cfg.fattree.aggs_per_pod = 2;
    cfg.fattree.cores_per_agg = 2;
    cfg.fattree.hosts_per_tor = 2;
    cfg.cc.scheme = scheme;
    e = std::make_unique<Experiment>(cfg);
  }

  size_t FirstFabricLink() const {
    const auto& links = e->topology().links();
    for (size_t i = 0; i < links.size(); ++i) {
      // Both endpoints are switches -> fabric link.
      if (e->topology().node(links[i].a).IsSwitch() &&
          e->topology().node(links[i].b).IsSwitch()) {
        return i;
      }
    }
    return 0;
  }

  std::unique_ptr<Experiment> e;
};

TEST(Resilience, RoutesRecomputeAroundFailedLink) {
  FailureFixture f("hpcc");
  topo::Topology& t = f.e->topology();
  const auto& links = t.links();
  const size_t li = f.FirstFabricLink();
  // Distances exist before and after; failing one redundant fabric link must
  // keep every host pair connected (fattree has ECMP redundancy).
  t.SetLinkUp(li, false);
  for (uint32_t a : t.hosts()) {
    for (uint32_t b : t.hosts()) {
      if (a != b) {
        EXPECT_GT(t.Distance(a, b), 0);
      }
    }
  }
  t.SetLinkUp(li, true);
  EXPECT_TRUE(links[li].up);
}

TEST(Resilience, EcmpPortsStayValidAfterFailure) {
  FailureFixture f("hpcc");
  topo::Topology& t = f.e->topology();
  const size_t li = f.FirstFabricLink();
  t.SetLinkUp(li, false);
  const auto& l = t.links()[li];
  for (uint32_t sw : t.switches()) {
    for (uint32_t dst : t.hosts()) {
      net::Packet probe;
      probe.dst = dst;
      for (uint64_t flow = 1; flow <= 4; ++flow) {
        probe.flow_id = flow;
        const int port = t.switch_node(sw).RoutePort(probe);
        ASSERT_GE(port, 0);
        // Never route over the dead link.
        const bool dead = (sw == l.a && port == l.port_a) ||
                          (sw == l.b && port == l.port_b);
        EXPECT_FALSE(dead);
      }
    }
  }
}

TEST(Resilience, FlowSurvivesMidFlightFailure) {
  FailureFixture f("hpcc");
  topo::Topology& t = f.e->topology();
  const auto& h = f.e->hosts();
  // Cross-pod flow (hosts 0..1 in pod 0, 2..3 in pod 1).
  host::Flow* flow = f.e->AddFlow(h[0], h[2], 20'000'000, 0);
  f.e->RunUntil(sim::Us(200));
  ASSERT_FALSE(flow->done);
  const uint64_t acked_before = flow->snd_una;
  t.SetLinkUp(f.FirstFabricLink(), false);
  f.e->RunUntil(sim::Ms(8));
  EXPECT_TRUE(flow->done);
  EXPECT_GT(flow->snd_una, acked_before);
}

TEST(Resilience, HpccPathChangeKeepsWindowSane) {
  FailureFixture f("hpcc");
  topo::Topology& t = f.e->topology();
  const auto& h = f.e->hosts();
  host::Flow* flow = f.e->AddFlow(h[0], h[2], 50'000'000, 0);
  f.e->RunUntil(sim::Us(300));
  const int64_t nic_bdp =
      t.host(h[0]).port(0).bandwidth_bps() / 8 *
      f.e->base_rtt() / sim::kPsPerSec;
  t.SetLinkUp(f.FirstFabricLink(), false);
  // After the reroute, the INT pathID changes; HPCC must re-prime rather
  // than reacting to bogus cross-path txBytes deltas. The window stays in
  // (0, Winit] the whole time.
  for (int i = 0; i < 50; ++i) {
    f.e->RunUntil(sim::Us(300 + 10 * i));
    EXPECT_GT(flow->cc().window_bytes(), 0);
    EXPECT_LE(flow->cc().window_bytes(), nic_bdp + 1);
  }
}

TEST(Resilience, DisconnectionDropsThenRepairRecovers) {
  // Star: killing the only link to the destination drops packets (no route
  // or frozen port); RTO keeps retrying; repair lets the flow finish.
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kStar;
  cfg.star.num_hosts = 2;
  cfg.cc.scheme = "hpcc";
  Experiment e(cfg);
  topo::Topology& t = e.topology();
  const auto& h = e.hosts();
  host::Flow* flow = e.AddFlow(h[0], h[1], 5'000'000, 0);
  e.RunUntil(sim::Us(100));
  ASSERT_FALSE(flow->done);
  // Link index 1 = h1 <-> switch.
  t.SetLinkUp(1, false);
  e.RunUntil(sim::Ms(3));
  EXPECT_FALSE(flow->done);
  t.SetLinkUp(1, true);
  e.RunUntil(sim::Ms(20));
  EXPECT_TRUE(flow->done);
}

TEST(Resilience, FrozenPortHoldsQueuedPacketsUntilRepair) {
  // Packets already queued on an egress when its link dies freeze in place
  // (buffer accounting intact) and flush on repair; packets arriving while
  // the destination is unroutable are dropped and recovered by GBN/RTO.
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kStar;
  cfg.star.num_hosts = 3;
  cfg.cc.scheme = "hpcc";
  Experiment e(cfg);
  topo::Topology& t = e.topology();
  net::SwitchNode& sw = t.switch_node(t.switches()[0]);
  const auto& h = e.hosts();
  // 2:1 burst builds a queue on the receiver downlink (switch port 2).
  host::Flow* f1 = e.AddFlow(h[0], h[2], 200'000, 0);
  host::Flow* f2 = e.AddFlow(h[1], h[2], 200'000, 0);
  e.RunUntil(sim::Us(5));
  ASSERT_GT(sw.port(2).queue_bytes(net::kDataPriority), 0);
  t.SetLinkUp(2, false);  // links 0,1,2 = h0,h1,h2 uplinks
  const int64_t frozen = sw.port(2).queue_bytes(net::kDataPriority);
  EXPECT_GT(frozen, 0);
  e.RunUntil(sim::Us(300));
  // Still frozen: nothing left the dead port.
  EXPECT_EQ(sw.port(2).queue_bytes(net::kDataPriority), frozen);
  EXPECT_FALSE(f1->done);
  t.SetLinkUp(2, true);
  e.RunUntil(sim::Ms(30));
  EXPECT_TRUE(f1->done);
  EXPECT_TRUE(f2->done);
}

class FailureSchemes : public ::testing::TestWithParam<const char*> {};

TEST_P(FailureSchemes, WorkloadSurvivesFabricFailure) {
  FailureFixture f(GetParam());
  const auto& h = f.e->hosts();
  std::vector<host::Flow*> flows;
  for (int i = 0; i < 6; ++i) {
    flows.push_back(f.e->AddFlow(h[i % 2], h[2 + i % 2], 2'000'000,
                                 i * sim::Us(20)));
  }
  f.e->RunUntil(sim::Us(150));
  f.e->topology().SetLinkUp(f.FirstFabricLink(), false);
  f.e->RunUntil(sim::Ms(20));
  for (auto* fl : flows) EXPECT_TRUE(fl->done);
}

INSTANTIATE_TEST_SUITE_P(Schemes, FailureSchemes,
                         ::testing::Values("hpcc", "dcqcn", "dctcp",
                                           "timely+win"));

}  // namespace
}  // namespace hpcc::runner
