// Tests for per-priority egress queues.
#include <gtest/gtest.h>

#include "net/queue.h"

namespace hpcc::net {
namespace {

PacketPtr Data(int bytes, uint64_t seq = 0) {
  auto p = MakeDataPacket(1, 0, 1, seq, bytes, false, false);
  return p;
}

PacketPtr Control() { return MakeCnp(1, 0, 1); }

constexpr std::array<bool, kNumPriorities> kNonePaused{};

TEST(PriorityQueues, FifoWithinPriority) {
  PriorityQueues q;
  q.Enqueue(Data(1000, 0));
  q.Enqueue(Data(1000, 1000));
  q.Enqueue(Data(1000, 2000));
  EXPECT_EQ(q.Dequeue(kNonePaused)->seq, 0u);
  EXPECT_EQ(q.Dequeue(kNonePaused)->seq, 1000u);
  EXPECT_EQ(q.Dequeue(kNonePaused)->seq, 2000u);
  EXPECT_EQ(q.Dequeue(kNonePaused), nullptr);
}

TEST(PriorityQueues, ControlPreemptsData) {
  PriorityQueues q;
  q.Enqueue(Data(1000));
  q.Enqueue(Control());
  auto first = q.Dequeue(kNonePaused);
  EXPECT_EQ(first->type, PacketType::kCnp);
  auto second = q.Dequeue(kNonePaused);
  EXPECT_EQ(second->type, PacketType::kData);
}

TEST(PriorityQueues, ByteAccounting) {
  PriorityQueues q;
  q.Enqueue(Data(1000));
  q.Enqueue(Data(500));
  EXPECT_EQ(q.bytes(kDataPriority), 1000 + kDataHeaderBytes + 500 + kDataHeaderBytes);
  EXPECT_EQ(q.bytes(kControlPriority), 0);
  q.Dequeue(kNonePaused);
  EXPECT_EQ(q.bytes(kDataPriority), 500 + kDataHeaderBytes);
  q.Dequeue(kNonePaused);
  EXPECT_EQ(q.bytes(kDataPriority), 0);
  EXPECT_TRUE(q.empty());
}

TEST(PriorityQueues, PausedPrioritySkipped) {
  PriorityQueues q;
  q.Enqueue(Data(1000));
  q.Enqueue(Control());
  std::array<bool, kNumPriorities> paused{};
  paused[kDataPriority] = true;
  // Control still flows.
  EXPECT_EQ(q.Dequeue(paused)->type, PacketType::kCnp);
  // Data is stuck.
  EXPECT_EQ(q.Dequeue(paused), nullptr);
  EXPECT_FALSE(q.HasEligible(paused));
  EXPECT_FALSE(q.empty());
  // Unpause: data drains.
  EXPECT_TRUE(q.HasEligible(kNonePaused));
  EXPECT_EQ(q.Dequeue(kNonePaused)->type, PacketType::kData);
}

TEST(PriorityQueues, TotalCounters) {
  PriorityQueues q;
  q.Enqueue(Data(1000));
  q.Enqueue(Control());
  EXPECT_EQ(q.total_packets(), 2u);
  EXPECT_GT(q.total_bytes(), 1000);
}

}  // namespace
}  // namespace hpcc::net
