// Scale-out routing core: interned next-hop groups, incremental link-event
// repair (vs a from-scratch dense oracle), the fat-tree analytic path model,
// exact MaxBaseRtt on asymmetric fabrics, and the Release-safe out-of-range
// destination drop.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/nexthop.h"
#include "net/packet.h"
#include "sim/rng.h"
#include "topo/fattree.h"
#include "topo/simple.h"
#include "topo/testbed.h"
#include "topo/topology.h"

namespace hpcc::topo {
namespace {

// ---- NextHopTable unit coverage ---------------------------------------------

TEST(NextHopTable, InternsAndSharesGroups) {
  net::NextHopTable t;
  t.Reset(8);
  const uint16_t ab[] = {1, 3};
  const uint16_t c[] = {2};
  t.SetRoute(0, ab, 2);
  t.SetRoute(1, ab, 2);
  t.SetRoute(2, c, 1);
  EXPECT_EQ(t.group_id(0), t.group_id(1));  // shared across destinations
  EXPECT_NE(t.group_id(0), t.group_id(2));
  EXPECT_EQ(t.num_groups(), 2u);
  EXPECT_EQ(t.PortsOf(0), (std::vector<uint16_t>{1, 3}));
  EXPECT_EQ(t.PortsOf(3), std::vector<uint16_t>{});  // unset: no route
  EXPECT_EQ(t.Lookup(3).size, 0u);
  EXPECT_TRUE(t.CheckConsistency());
}

TEST(NextHopTable, AddRemovePortKeepsOrderAndRefcounts) {
  net::NextHopTable t;
  t.Reset(4);
  const uint16_t ab[] = {1, 3};
  t.SetRoute(0, ab, 2);
  t.SetRoute(1, ab, 2);
  t.AddPort(0, 2);  // copy-on-write: dst 1 must keep {1,3}
  EXPECT_EQ(t.PortsOf(0), (std::vector<uint16_t>{1, 2, 3}));
  EXPECT_EQ(t.PortsOf(1), (std::vector<uint16_t>{1, 3}));
  t.RemovePort(0, 1);
  t.RemovePort(0, 3);
  EXPECT_EQ(t.PortsOf(0), std::vector<uint16_t>{2});
  t.RemovePort(0, 2);
  EXPECT_EQ(t.Lookup(0).size, 0u);
  EXPECT_TRUE(t.CheckConsistency());
}

TEST(NextHopTable, GroupChurnCompactsStorage) {
  net::NextHopTable t;
  t.Reset(2);
  sim::Rng rng(7);
  // Thousands of distinct transient groups on one destination: dead port
  // storage must be reclaimed instead of growing without bound.
  for (int round = 0; round < 20'000; ++round) {
    uint16_t ports[3] = {static_cast<uint16_t>(rng.Index(64)), 0, 0};
    ports[1] = static_cast<uint16_t>(64 + rng.Index(64));
    ports[2] = static_cast<uint16_t>(128 + rng.Index(64));
    t.SetRoute(0, ports, 3);
  }
  EXPECT_TRUE(t.CheckConsistency());
  EXPECT_LT(t.resident_bytes(), 1u << 20);  // bounded despite 20k rewrites
}

// ---- Independent dense oracle ----------------------------------------------

// The seed algorithm, reimplemented here so the product code shares nothing
// with it: per-destination BFS, candidates = up-ports one hop closer.
std::vector<std::vector<uint16_t>> DenseRoutesFor(Topology& t, uint32_t dst) {
  const size_t n = t.num_nodes();
  std::vector<int> dist(n, -1);
  std::vector<uint32_t> q{dst};
  dist[dst] = 0;
  for (size_t head = 0; head < q.size(); ++head) {
    const uint32_t u = q[head];
    net::Node& node = t.node(u);
    for (int p = 0; p < node.num_ports(); ++p) {
      if (!node.port(p).link_up()) continue;
      const uint32_t peer = node.port(p).peer()->id();
      if (dist[peer] < 0) {
        dist[peer] = dist[u] + 1;
        q.push_back(peer);
      }
    }
  }
  std::vector<std::vector<uint16_t>> routes(n);
  for (uint32_t u = 0; u < n; ++u) {
    if (u == dst || dist[u] <= 0) continue;
    net::Node& node = t.node(u);
    for (int p = 0; p < node.num_ports(); ++p) {
      if (!node.port(p).link_up()) continue;
      const uint32_t peer = node.port(p).peer()->id();
      if (dist[peer] >= 0 && dist[peer] == dist[u] - 1) {
        routes[u].push_back(static_cast<uint16_t>(p));
      }
    }
  }
  return routes;
}

void ExpectTablesMatchDenseOracle(Topology& t, const char* context) {
  for (const uint32_t dst : t.hosts()) {
    const auto dense = DenseRoutesFor(t, dst);
    for (const uint32_t s : t.switches()) {
      ASSERT_EQ(t.switch_node(s).routes().PortsOf(dst), dense[s])
          << context << ": switch " << t.switch_node(s).name() << " dst "
          << t.node(dst).name();
    }
  }
  for (const uint32_t s : t.switches()) {
    ASSERT_TRUE(t.switch_node(s).routes().CheckConsistency())
        << context << ": switch " << s;
  }
}

TEST(Routing, FullRecomputeMatchesDenseOracle) {
  sim::Simulator s;
  FatTreeOptions o;  // mini fat-tree, ToR-shared BFS path
  auto ft = MakeFatTree(&s, o);
  ExpectTablesMatchDenseOracle(*ft.topo, "fattree defaults");

  sim::Simulator s2;
  TestbedOptions to;  // dual-homed hosts: the per-destination path
  to.servers_per_pair = 4;
  auto tb = MakeTestbed(&s2, to);
  ExpectTablesMatchDenseOracle(*tb.topo, "testbed");
}

TEST(Routing, InterningCollapsesFatTreeGroups) {
  sim::Simulator s;
  FatTreeOptions o;  // a k=16-shaped slice: 512 hosts, 112 switches
  o.pods = 8;
  o.tors_per_pod = 8;
  o.aggs_per_pod = 4;
  o.cores_per_agg = 4;
  o.hosts_per_tor = 8;
  auto ft = MakeFatTree(&s, o);
  Topology& t = *ft.topo;
  // Dense storage would hold one candidate list per (switch, host) pair;
  // interning collapses hosts behind the same rack/pod to shared groups.
  const size_t pairs = t.switches().size() * t.hosts().size();
  EXPECT_LT(t.RoutingGroups(), pairs / 50);
  // And the resident footprint beats a dense vector-per-destination layout
  // by over the 5x the acceptance bar asks for (counting only the dense
  // layout's vector headers + port payload, i.e. ignoring its per-vector
  // heap-block overhead — the comparison is conservative).
  const size_t dense_bytes =
      t.switches().size() * t.num_nodes() * sizeof(std::vector<uint16_t>) +
      t.RoutingExpandedPortEntries() * sizeof(uint16_t);
  EXPECT_GT(dense_bytes, 5 * t.RoutingResidentBytes());
}

// ---- Link-flap storm: incremental repair == from-scratch rebuild -----------

void FlapStorm(Topology& t, uint64_t seed, int flaps, bool verify_each) {
  sim::Rng rng(seed);
  const auto& links = t.links();
  std::vector<size_t> down;
  for (int i = 0; i < flaps; ++i) {
    if (!down.empty() && rng.Uniform() < 0.4) {
      const size_t pick = rng.Index(down.size());
      t.SetLinkUp(down[pick], true);
      down.erase(down.begin() + static_cast<long>(pick));
    } else {
      const size_t li = rng.Index(links.size());
      if (!links[li].up) continue;
      t.SetLinkUp(li, false);
      down.push_back(li);
    }
    if (verify_each) {
      ASSERT_NO_FATAL_FAILURE(
          ExpectTablesMatchDenseOracle(t, "after random flap"));
    }
  }
  for (const size_t li : down) t.SetLinkUp(li, true);
  ExpectTablesMatchDenseOracle(t, "after repairing all links");
}

TEST(Routing, LinkFlapStormMatchesOracleOnFatTree) {
  sim::Simulator s;
  FatTreeOptions o;
  o.pods = 4;
  o.tors_per_pod = 3;
  o.aggs_per_pod = 3;
  o.cores_per_agg = 2;
  o.hosts_per_tor = 3;
  auto ft = MakeFatTree(&s, o);
  FlapStorm(*ft.topo, 0xf1a5, 24, /*verify_each=*/true);
}

TEST(Routing, LinkFlapStormMatchesOracleOnTestbed) {
  // Multi-homed hosts: link flaps hit NIC links too (farther-endpoint-is-a-
  // host classification, both degree-1 skip and multi-homed rebuild).
  sim::Simulator s;
  TestbedOptions o;
  o.servers_per_pair = 3;
  auto tb = MakeTestbed(&s, o);
  FlapStorm(*tb.topo, 0xbed5, 30, /*verify_each=*/true);
}

TEST(Routing, BuiltInOracleAcceptsIncrementalRepair) {
  // The debug-mode oracle wired into SetLinkUp itself (HPCC_ROUTE_ORACLE):
  // it must stay silent through a partitioning down + heal cycle.
  sim::Simulator s;
  FatTreeOptions o;
  o.pods = 2;
  o.aggs_per_pod = 1;
  o.cores_per_agg = 1;  // single spine: taking it down partitions the pods
  auto ft = MakeFatTree(&s, o);
  Topology& t = *ft.topo;
  t.set_route_oracle(true);
  size_t spine = t.links().size();
  for (size_t i = 0; i < t.links().size(); ++i) {
    if (t.node(t.links()[i].a).IsSwitch() && t.node(t.links()[i].b).IsSwitch())
      spine = i;
  }
  ASSERT_LT(spine, t.links().size());
  EXPECT_NO_THROW(t.SetLinkUp(spine, false));
  EXPECT_NO_THROW(t.SetLinkUp(spine, true));
  // And a NIC-link flap (degree-1 host endpoint).
  EXPECT_NO_THROW(t.SetLinkUp(t.links().size() - 1, false));
  EXPECT_NO_THROW(t.SetLinkUp(t.links().size() - 1, true));
}

TEST(Routing, WideFatTreeSingleFlapMatchesOracle) {
  // A k=16-shaped slice (the fattree16/fattree32 scenario family): one
  // fabric flap repaired incrementally must equal the dense rebuild.
  sim::Simulator s;
  FatTreeOptions o;
  o.pods = 8;
  o.tors_per_pod = 4;
  o.aggs_per_pod = 4;
  o.cores_per_agg = 4;
  o.hosts_per_tor = 4;  // 128 hosts, 80 switches
  auto ft = MakeFatTree(&s, o);
  Topology& t = *ft.topo;
  // First ToR-agg link of pod 0.
  size_t toragg = t.links().size();
  for (size_t i = 0; i < t.links().size(); ++i) {
    const auto& l = t.links()[i];
    if (t.node(l.a).IsSwitch() && t.node(l.b).IsSwitch() &&
        (t.node(l.a).name().rfind("tor", 0) == 0 ||
         t.node(l.b).name().rfind("tor", 0) == 0)) {
      toragg = i;
      break;
    }
  }
  ASSERT_LT(toragg, t.links().size());
  t.SetLinkUp(toragg, false);
  ExpectTablesMatchDenseOracle(t, "wide fat-tree, ToR-agg down");
  t.SetLinkUp(toragg, true);
  ExpectTablesMatchDenseOracle(t, "wide fat-tree, ToR-agg repaired");
}

// ---- Out-of-range destination: checked kNoRoute drop ------------------------

TEST(Routing, OutOfRangeDestinationIsCheckedDrop) {
  sim::Simulator s;
  StarOptions o;
  o.num_hosts = 2;
  auto star = MakeStar(&s, o);
  net::SwitchNode& sw = star.topo->switch_node(star.switch_id);
  net::Packet probe;
  probe.flow_id = 1;
  probe.dst = 0xdeadbeef;  // corrupt destination, far past the node table
  EXPECT_EQ(sw.RoutePort(probe), -1);  // used to be an assert-only OOB read

  // End to end: the switch counts it as a drop instead of crashing or
  // forwarding garbage.
  const uint64_t drops_before = sw.dropped_packets();
  auto pkt = net::MakeDataPacket(/*flow_id=*/1, /*src=*/0,
                                 /*dst=*/0xdeadbeef, /*seq=*/0,
                                 /*payload_bytes=*/1000,
                                 /*int_enabled=*/false, /*ecn_capable=*/false);
  sw.Receive(std::move(pkt), /*in_port=*/0);
  EXPECT_EQ(sw.dropped_packets(), drops_before + 1);
}

// ---- Analytic fat-tree path model vs BFS ------------------------------------

void ExpectModelMatchesBfs(const FatTreeOptions& o, const char* context) {
  sim::Simulator s;
  auto ft = MakeFatTree(&s, o);
  Topology& t = *ft.topo;
  for (const uint32_t a : t.hosts()) {
    for (const uint32_t b : t.hosts()) {
      if (a == b) continue;
      ASSERT_EQ(t.BaseRtt(a, b), t.BaseRttViaBfs(a, b))
          << context << " hosts " << a << "->" << b;
      ASSERT_EQ(t.BottleneckBps(a, b), t.BottleneckBpsViaBfs(a, b))
          << context << " hosts " << a << "->" << b;
    }
  }
}

TEST(FatTreeModel, MatchesBfsOnEveryPair) {
  FatTreeOptions mini;  // 2 pods
  ExpectModelMatchesBfs(mini, "mini");

  FatTreeOptions one_pod;
  one_pod.pods = 1;
  one_pod.tors_per_pod = 3;
  one_pod.hosts_per_tor = 3;
  ExpectModelMatchesBfs(one_pod, "one pod");

  FatTreeOptions skewed;  // non-default speeds: host faster than fabric
  skewed.pods = 3;
  skewed.tors_per_pod = 2;
  skewed.aggs_per_pod = 2;
  skewed.cores_per_agg = 1;
  skewed.hosts_per_tor = 2;
  skewed.host_bps = 400'000'000'000;
  skewed.fabric_bps = 100'000'000'000;
  skewed.link_delay = sim::Us(2);
  ExpectModelMatchesBfs(skewed, "skewed speeds");
}

TEST(FatTreeModel, MaxBaseRttMatchesExhaustiveSearch) {
  sim::Simulator s;
  FatTreeOptions o;
  o.pods = 3;
  o.tors_per_pod = 2;
  o.hosts_per_tor = 3;
  auto ft = MakeFatTree(&s, o);
  Topology& t = *ft.topo;
  sim::TimePs brute = 0;
  for (const uint32_t a : t.hosts()) {
    for (const uint32_t b : t.hosts()) {
      if (a != b) brute = std::max(brute, t.BaseRttViaBfs(a, b));
    }
  }
  EXPECT_EQ(t.MaxBaseRtt(), brute);
}

// ---- Exact MaxBaseRtt on asymmetric fabrics ---------------------------------

TEST(MaxBaseRtt, ExactOnAsymmetricChain) {
  // h1 - s0 - s1 - s2 - h2, with h0 hanging off the middle switch: the old
  // sample-against-host-0 shortcut saw only 3-hop paths and under-reported
  // the true 4-hop h1<->h2 maximum — mis-configuring every CC scheme's RTT
  // constant T on testbed-like asymmetric builds.
  sim::Simulator sim;
  Topology t(&sim);
  host::HostConfig hc;
  net::SwitchConfig sc;
  const int64_t bps = 100'000'000'000;
  const uint32_t h0 = t.AddHost(hc, "h0");  // hosts_[0]: the old anchor
  const uint32_t h1 = t.AddHost(hc, "h1");
  const uint32_t h2 = t.AddHost(hc, "h2");
  const uint32_t s0 = t.AddSwitch(sc, "s0");
  const uint32_t s1 = t.AddSwitch(sc, "s1");
  const uint32_t s2 = t.AddSwitch(sc, "s2");
  t.AddLink(s0, s1, bps, sim::Us(1));
  t.AddLink(s1, s2, bps, sim::Us(1));
  t.AddLink(h0, s1, bps, sim::Us(1));  // middle
  t.AddLink(h1, s0, bps, sim::Us(1));  // far left
  t.AddLink(h2, s2, bps, sim::Us(1));  // far right
  t.Finalize();

  const sim::TimePs anchored =
      std::max({t.BaseRtt(h0, h1), t.BaseRtt(h1, h0), t.BaseRtt(h0, h2),
                t.BaseRtt(h2, h0)});
  const sim::TimePs true_max = t.BaseRtt(h1, h2);
  ASSERT_GT(true_max, anchored);  // the shape the old shortcut got wrong
  EXPECT_EQ(t.MaxBaseRtt(), true_max);
}

TEST(MaxBaseRtt, TestbedMatchesExhaustiveSearch) {
  sim::Simulator s;
  TestbedOptions o;
  o.servers_per_pair = 4;
  auto tb = MakeTestbed(&s, o);
  Topology& t = *tb.topo;
  sim::TimePs brute = 0;
  for (const uint32_t a : t.hosts()) {
    for (const uint32_t b : t.hosts()) {
      if (a != b) brute = std::max(brute, t.BaseRttViaBfs(a, b));
    }
  }
  EXPECT_EQ(t.MaxBaseRtt(), brute);
}

}  // namespace
}  // namespace hpcc::topo
