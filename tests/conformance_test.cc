// Cross-scheme conformance: every primary CC scheme (hpcc, dcqcn, timely,
// dctcp, rcp) runs one shared dumbbell scenario — an 6-to-1 incast through a
// 2:1-oversubscribed trunk plus a pinned reverse flow — under the full
// invariant-monitor set, and must meet the same basic FCT/throughput sanity
// bounds. This is deliberately scheme-agnostic: it doesn't rank schemes, it
// catches a scheme that stops making progress, blows up its queues, escapes
// its rate bounds, or trips any global invariant.
#include <gtest/gtest.h>

#include "cc/factory.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace hpcc::scenario {
namespace {

class Conformance : public ::testing::TestWithParam<std::string> {};

// All flows are fixed-size incast members (100 KB), so every scheme can
// finish them well inside the drain window and completion is a hard bound.
Scenario SharedDumbbellScenario(const std::string& scheme) {
  const std::string text = R"({
    "name": "conformance",
    "topology": {"kind": "dumbbell", "hosts_per_side": 4,
                 "host_gbps": 25, "trunk_gbps": 50},
    "cc": {"scheme": ")" + scheme + R"("},
    "workload": {"load": 0},
    "duration_ms": 0.5,
    "drain_factor": 8,
    "seed": 3,
    "events": [
      {"type": "incast", "at_us": 20, "fan_in": 6, "flow_bytes": 100000,
       "receiver": 0},
      {"type": "incast", "at_us": 250, "fan_in": 6, "flow_bytes": 100000,
       "receiver": 5}
    ]
  })";
  return ParseScenarioText(text);
}

TEST_P(Conformance, SharedDumbbellSanityBounds) {
  const std::string scheme = GetParam();
  const Scenario s = SharedDumbbellScenario(scheme);
  const std::vector<ScenarioRun> runs = ExpandSweep(s);
  ASSERT_EQ(runs.size(), 1u);

  const SweepRunResult r = ScenarioRunner::RunOne(runs[0], /*check=*/true);
  ASSERT_TRUE(r.error.empty()) << scheme << ": " << r.error;
  EXPECT_EQ(r.violation_count, 0u)
      << scheme << " violated invariants:\n"
      << (r.violations.empty() ? "" : r.violations.front().Format());

  const runner::ExperimentResult& res = r.result;
  // Progress: both bursts ran and every flow finished.
  EXPECT_EQ(res.flows_created, 12u) << scheme;
  EXPECT_EQ(res.flows_completed, res.flows_created) << scheme;
  EXPECT_EQ(res.dropped_packets, 0u) << scheme;  // PFC-protected fabric

  // FCT sanity: the slowdown of a 6-to-1 incast member is bounded by the
  // fan-in times a generous scheduling/queueing allowance. A scheme that
  // stalls (RTO recovery, rate collapse) blows way past this.
  const stats::PercentileTracker& slow = res.fct->overall();
  EXPECT_GE(slow.Percentile(50), 1.0) << scheme;
  EXPECT_LT(slow.Percentile(50), 30.0) << scheme;
  EXPECT_LT(slow.Percentile(99), 60.0) << scheme;

  // Throughput sanity: 12 x 100 KB must not need more than 16x the ideal
  // serial time through the 25 Gbps receiver NICs (2 receivers).
  const double ideal_us = 6 * 100'000 * 8 / 25e9 * 1e6;  // one burst, ~192us
  EXPECT_LT(sim::ToUs(res.sim_time), 16 * ideal_us) << scheme;

  // Queue sanity: bounded by the shared buffer with room to spare.
  EXPECT_LE(res.max_queue_bytes, 32LL * 1024 * 1024) << scheme;
}

INSTANTIATE_TEST_SUITE_P(PrimarySchemes, Conformance,
                         ::testing::ValuesIn(cc::PrimarySchemes()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-' || c == '+') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace hpcc::scenario
