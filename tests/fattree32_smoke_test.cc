// 8-seed monitor-clean smoke of the k=32 payoff scenario
// (examples/scenarios/fattree32_websearch.json): 8192 hosts, WebSearch load,
// link flaps across both fabric tiers repaired incrementally. Every seed
// must finish with zero invariant violations — this is the scale point the
// scale-out routing core exists for, so it runs against the committed file,
// not a scaled-down copy.
#include <gtest/gtest.h>

#include <string>

#include "check/fuzzer.h"
#include "scenario/scenario.h"

namespace hpcc::check {
namespace {

TEST(FatTree32Smoke, WebsearchScenarioRunsMonitorCleanAcrossSeeds) {
  const std::string path = std::string(HPCC_SOURCE_DIR) +
                           "/examples/scenarios/fattree32_websearch.json";
  const scenario::Scenario s = scenario::LoadScenarioFile(path);
  ASSERT_EQ(s.config.fattree.num_hosts(), 8192);
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr int kSeeds = 2;  // sanitizer runs are ~5x slower; keep CI sane
#else
  constexpr int kSeeds = 8;
#endif
  for (int seed = 1; seed <= kSeeds; ++seed) {
    scenario::Json doc = s.source;
    doc.Set("seed", scenario::Json::MakeNumber(seed));
    const FuzzRunReport rep = RunScenarioDocChecked(doc, 100'000'000);
    ASSERT_TRUE(rep.error.empty()) << "seed " << seed << ": " << rep.error;
    EXPECT_EQ(rep.violation_count, 0u)
        << "seed " << seed << ": " << rep.violations.front().Format();
    EXPECT_GT(rep.flows_created, 0u);
  }
}

}  // namespace
}  // namespace hpcc::check
