// bench_check — the perf regression gate behind the committed BENCH files.
//
// Compares one or more fresh bench_report outputs against a committed
// baseline and fails when any benchmark regresses by more than the allowed
// percentage. Multiple CURRENT files are folded with a per-benchmark max
// (best-of-N), which is how the CI gate absorbs shared-runner noise:
//
//   build/bench_report --quick --out=fresh1.json   # x3
//   build/bench_check BENCH_current.json fresh1.json fresh2.json fresh3.json \
//       --max-drop-pct=15
//
// Benchmarks are matched by (name, unit); a unit change (e.g. the macro
// benches' events -> pkts move) makes old numbers incomparable, so such
// entries are reported as new/retired rather than compared.
//
// `--calibrate=NAME` rescales the whole baseline by the current/baseline
// ratio of one benchmark before comparing, turning cross-host absolute
// comparisons into same-host-ish relative ones: the committed pair is
// measured on a dev host, while CI runs on shared runners whose constant
// hardware gap would otherwise trip (or mask) the drop threshold on every
// benchmark. The calibration benchmark itself is reported but never gated.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/json.h"
#include "tools/cli_util.h"

namespace {

using hpcc::scenario::Json;

struct Bench {
  std::string unit;
  double per_sec = 0;
};

std::map<std::string, Bench> LoadReport(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_check: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::map<std::string, Bench> out;
  const Json doc = Json::Parse(text.str());
  const Json* benches = doc.Find("benchmarks");
  if (benches == nullptr || !benches->is_array()) {
    std::fprintf(stderr, "bench_check: %s has no benchmarks array\n",
                 path.c_str());
    std::exit(2);
  }
  for (const Json& b : benches->items()) {
    const Json* name = b.Find("name");
    const Json* unit = b.Find("unit");
    const Json* per_sec = b.Find("items_per_sec");
    if (name == nullptr || per_sec == nullptr) continue;
    Bench& entry = out[name->AsString()];
    entry.unit = unit != nullptr ? unit->AsString() : "";
    entry.per_sec = std::max(entry.per_sec, per_sec->AsDouble());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double max_drop_pct = 15.0;
  std::string calibrate;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (hpcc::cli::ConsumeFlag(argv[i], "--max-drop-pct", &v)) {
      max_drop_pct = std::atof(v);
    } else if (hpcc::cli::ConsumeFlag(argv[i], "--calibrate", &v)) {
      calibrate = v;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: bench_check BASELINE CURRENT [CURRENT...]\n"
                   "                   [--max-drop-pct=P]   (default 15)\n"
                   "                   [--calibrate=BENCH]  (scale baseline\n"
                   "                    by BENCH's current/baseline ratio —\n"
                   "                    for cross-host runs, e.g. CI)\n");
      return 2;
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.size() < 2) {
    std::fprintf(stderr, "bench_check: need BASELINE and >=1 CURRENT file\n");
    return 2;
  }

  const std::map<std::string, Bench> base = LoadReport(files[0]);
  std::map<std::string, Bench> cur;
  for (size_t i = 1; i < files.size(); ++i) {
    for (const auto& [name, b] : LoadReport(files[i])) {
      Bench& entry = cur[name];
      entry.unit = b.unit;
      entry.per_sec = std::max(entry.per_sec, b.per_sec);
    }
  }

  double scale = 1.0;
  if (!calibrate.empty()) {
    const auto b = base.find(calibrate);
    const auto c = cur.find(calibrate);
    if (b == base.end() || c == cur.end() || b->second.per_sec <= 0) {
      std::fprintf(stderr,
                   "bench_check: calibration benchmark \"%s\" missing from "
                   "baseline or current\n",
                   calibrate.c_str());
      return 2;
    }
    scale = c->second.per_sec / b->second.per_sec;
    std::printf("calibrated by %s: host speed factor %.3f\n",
                calibrate.c_str(), scale);
  }

  int failures = 0;
  for (const auto& [name, b] : base) {
    auto it = cur.find(name);
    if (it == cur.end()) {
      std::printf("%-28s RETIRED (in baseline only)\n", name.c_str());
      continue;
    }
    if (it->second.unit != b.unit) {
      std::printf("%-28s UNIT CHANGED (%s -> %s), not compared\n",
                  name.c_str(), b.unit.c_str(), it->second.unit.c_str());
      continue;
    }
    // Dimensionless entries (unit "x1000", e.g. the routing-table
    // compression ratio) are hardware-independent: calibrating them by the
    // host speed factor would manufacture regressions on faster runners.
    const bool dimensionless = b.unit == std::string("x1000");
    const double expected = b.per_sec * (dimensionless ? 1.0 : scale);
    const double drop = (1.0 - it->second.per_sec / expected) * 100.0;
    const bool gated = name != calibrate;
    const bool bad = gated && drop > max_drop_pct;
    std::printf("%-28s %12.0f -> %12.0f %s/sec  (%+.1f%%)%s%s\n", name.c_str(),
                expected, it->second.per_sec, b.unit.c_str(), -drop,
                gated ? "" : "  (calibration ref, not gated)",
                bad ? "  ** REGRESSION **" : "");
    if (bad) ++failures;
  }
  for (const auto& [name, b] : cur) {
    if (base.find(name) == base.end()) {
      std::printf("%-28s NEW: %.0f %s/sec\n", name.c_str(), b.per_sec,
                  b.unit.c_str());
    }
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_check: %d benchmark(s) dropped more than %.0f%%\n",
                 failures, max_drop_pct);
    return 1;
  }
  std::printf("bench_check: OK (max allowed drop %.0f%%)\n", max_drop_pct);
  return 0;
}
