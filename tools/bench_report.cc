// bench_report: self-contained perf harness for the simulator hot paths.
//
// Unlike bench_micro (google-benchmark, optional dependency) this tool builds
// everywhere and emits a machine-readable JSON report, so the repo can keep a
// committed perf trajectory: run it before a perf change to produce
// BENCH_baseline.json and after to produce BENCH_current.json, e.g.
//
//   build/bench_report --label=baseline --out=BENCH_baseline.json
//   build/bench_report --label=current  --out=BENCH_current.json
//
// Benchmarks:
//   event_loop/schedule_run   schedule N events (capture > std::function SBO)
//                             and drain — the simulator's core throughput
//   event_loop/timer_churn    schedule+cancel+reschedule, the RTO/CC-timer
//                             pattern (exercises Cancel and slot reuse)
//   forward_path/packet_cycle data-packet + ACK factory round trip, the
//                             per-hop allocation cost the pool removes
//   macro/fig11_incast        Fig. 11-style star incast+load run on the
//                             transmission-train fast path; reports switch-
//                             forwarded packets per wall-second end to end
//                             (a work unit independent of the transmit
//                             engine — the fast path executes fewer events
//                             for the same forwarding work). Invariant-
//                             monitor hook sites are compiled in with no
//                             monitor registered.
//   macro/fig11_nofastpath    the same run on the per-packet reference
//                             engine (--fastpath=off): the committed pair of
//                             these two numbers is the same-host A/B for the
//                             fast path.
//   macro/fig11_checked       the fast-path run with every standard
//                             invariant monitor attached — the measured cost
//                             of always-on checking (used by fuzz/CI, not by
//                             perf runs)
//   macro/fig11_faultoff      the fast-path run with NO fault events,
//                             tracked as its own committed number: the
//                             bench_check gate on it pins the "fault
//                             injection costs nothing when unused" claim
//                             (no corruption-window lookups or backoff
//                             upkeep on the baseline hot path)
//   micro/telemetry_overhead  the fast-path run with telemetry OFF, tracked
//                             as its own committed number: the bench_check
//                             gate on it pins the "no new hot-path branches
//                             when telemetry is disabled" claim
//   macro/fig11_telemetry     the same run with the full telemetry collector
//                             attached (counters + queue/flow samplers, no
//                             file writes) — the measured cost of turning
//                             observability on
//   micro/route_full_k16/k32  one from-scratch RecomputeRoutes of the k=16
//                             (1024-host) / k=32 (8192-host) fat-tree
//   micro/route_incr_k16/k32  one incremental SetLinkUp repair of an
//                             agg-core link (alternating down/up) on the
//                             same fabrics — the incr/full ratio is the
//                             link-event repair speedup headline
//   micro/route_resident_ratio_k32
//                             dense-table bytes / interned next-hop-group
//                             bytes on the k=32 fabric, x1000 (a memory
//                             ratio, not a rate: higher = better, so the
//                             bench_check drop gate guards compression)
//   macro/fattree32           the fattree32_websearch base point end to end
//                             (8192 hosts, WebSearch load, two-tier link
//                             flaps), forwarded pkts per wall-second
//                             including fabric construction
//   macro/fattree32_shards1/2/4
//                             the same point on 1/2/4 conservative-PDES
//                             execution lanes (link flaps via the sharded-
//                             legal InstallLinkEvent script). All three
//                             forward identical packets — the equivalence
//                             suite pins that — so the committed trio is the
//                             same-host lane-scaling A/B. On a single-core
//                             host the >1 entries measure pure barrier +
//                             handoff overhead; the speedup headline only
//                             shows on hosts with >= `shards` cores.
//   micro/shard_handoff       raw SPSC HandoffChannel push+pop throughput
//                             (records/sec) — the per-record cost of the
//                             cross-lane packet handoff fabric
//   micro/snapshot_restore    one warm-start member run on a small dumbbell
//                             sweep point: adopt the shared fabric snapshot,
//                             replay the checkpoint, simulate only the
//                             post-checkpoint tail (restores/sec; the bench
//                             aborts if the restore silently falls back cold)
//   micro/fluid_tick          hybrid-engine tick cost: 64 standing fluid
//                             flows on the small fat-tree, flow-ticks/sec
//                             (one flow updated for one RTT round)
//   macro/fattree48_hybrid    the fattree48_hybrid payoff point end to end
//                             (27648 hosts, fluid WebSearch background +
//                             64-way packet incast foreground), forwarded
//                             pkts per wall-second including fabric build
//   macro/fattree32_sweep_cold / macro/fattree32_sweep_warm
//                             an 8-point k=32 sweep (grid points differ only
//                             in a post-checkpoint incast axis) end to end on
//                             one worker, with warm-start off resp. on. Cold
//                             pays fabric build + route BFS + the pre-
//                             checkpoint simulation per point; warm pays them
//                             once and restores the other 7 points, so the
//                             points/sec pair is the committed sweep-setup
//                             amortization headline.
//
// Each benchmark self-calibrates: batches repeat until the measured wall time
// reaches --min-time-ms (default 500 ms; --quick drops it to 50 ms for CI
// smoke jobs).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_hotpath.h"
#include "check/monitors.h"
#include "net/handoff.h"
#include "net/packet.h"
#include "obs/telemetry.h"
#include "runner/experiment.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "tools/cli_util.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct BenchResult {
  std::string name;
  uint64_t items = 0;      // work units processed (events, packets, ...)
  double seconds = 0;      // wall time spent processing them
  const char* unit = "items";
};

// Runs `batch` (which returns the number of items it processed) until the
// accumulated wall time reaches `min_seconds`.
template <typename Batch>
BenchResult RunBench(const std::string& name, const char* unit,
                     double min_seconds, Batch&& batch) {
  BenchResult r;
  r.name = name;
  r.unit = unit;
  // Warm-up batch: touches code and allocator caches, excluded from timing.
  batch();
  const auto t0 = Clock::now();
  do {
    r.items += batch();
    r.seconds = SecondsSince(t0);
  } while (r.seconds < min_seconds);
  return r;
}

// Steady-state event churn (bench_hotpath.h, shared with bench_micro's
// BM_SimulatorSteadyChurn) at a realistic pending-queue depth.
uint64_t EventLoopScheduleRunBatch() {
  constexpr int kPending = 512;
  constexpr uint64_t kEvents = 100'000;
  const uint64_t executed = hpcc::benchgen::RunSteadyChurn(kPending, kEvents);
  if (executed < kEvents) std::abort();
  return executed;
}

// RTO-style timer churn (bench_hotpath.h, shared with bench_micro's
// BM_SimulatorTimerChurn): Schedule+Cancel pairs plus one drain per batch.
uint64_t EventLoopTimerChurnBatch() {
  static uint64_t fired = 0;
  return hpcc::benchgen::RunTimerChurn(&fired);
}

uint64_t PacketCycleBatch() {
  constexpr int kPackets = 20'000;
  uint64_t bytes = 0;
  for (int i = 0; i < kPackets; ++i) {
    auto data = hpcc::net::MakeDataPacket(
        /*flow_id=*/7, /*src=*/1, /*dst=*/2,
        /*seq=*/static_cast<uint64_t>(i) * 1000, /*payload_bytes=*/1000,
        /*int_enabled=*/true, /*ecn_capable=*/false);
    auto ack = hpcc::net::MakeAck(*data, data->seq + 1000);
    bytes += static_cast<uint64_t>(data->size_bytes() + ack->size_bytes());
  }
  if (bytes == 1) std::abort();
  return kPackets;
}

// Fig. 11-style macro point (bench_hotpath.h, shared with bench_micro's
// BM_MacroFig11Incast): the metric is switch-forwarded packets per
// wall-second, the end-to-end figure of merit for the §5 harness.
uint64_t MacroFig11Batch() {
  hpcc::runner::Experiment e(hpcc::benchgen::Fig11MacroConfig());
  auto result = e.Run();
  return result.packets_forwarded;
}

// The identical workload on the per-packet reference engine: the committed
// fastpath-vs-reference pair is a same-host A/B (both runs forward exactly
// the same packets — the determinism suite pins that).
uint64_t MacroFig11NoFastpathBatch() {
  hpcc::runner::Experiment e(
      hpcc::benchgen::Fig11MacroConfig(/*fast_path=*/false));
  auto result = e.Run();
  return result.packets_forwarded;
}

// Telemetry-off pin for the observability layer: identical to
// macro/fig11_incast — no registry, no recorder — but tracked as its own
// committed number so a change that sneaks a branch or a hook registration
// into the telemetry-off hot path trips the bench_check drop gate even if
// the fig11 numbers are re-baselined for an unrelated reason.
uint64_t TelemetryOverheadBatch() {
  hpcc::runner::Experiment e(hpcc::benchgen::Fig11MacroConfig());
  auto result = e.Run();
  return result.packets_forwarded;
}

// The same macro point with the full telemetry collector attached (hook
// counters + queue/flow track samplers, no file writes): the measured cost
// of turning observability on, reported next to the off number so
// docs/OBSERVABILITY.md can quote a tracked figure.
uint64_t MacroFig11TelemetryBatch() {
  hpcc::check::MonitorRegistry registry;
  hpcc::runner::Experiment e(hpcc::benchgen::Fig11MacroConfig());
  registry.set_clock(&e.simulator());
  registry.AttachTo(e.topology());
  hpcc::obs::TelemetryConfig tcfg;
  tcfg.manifest = true;
  tcfg.trace = true;
  hpcc::obs::TelemetrySession session(tcfg, &registry, &e);
  session.Start();
  auto result = e.Run();
  registry.Finish(e.simulator().now());
  if (session.recorder().counters().dequeued_packets == 0) std::abort();
  return result.packets_forwarded;
}

// The same macro point with the full standard monitor set attached: the
// price of always-on invariant checking, reported next to the unmonitored
// number so the overhead is a first-class tracked quantity.
uint64_t MacroFig11CheckedBatch() {
  hpcc::check::MonitorRegistry registry;
  hpcc::runner::Experiment e(hpcc::benchgen::Fig11MacroConfig());
  hpcc::check::InstallStandardMonitors(registry, e);
  auto result = e.Run();
  registry.Finish(e.simulator().now());
  if (registry.violation_count() != 0) std::abort();  // bench must run clean
  return result.packets_forwarded;
}

// Fault-off pin for the resilience layer: identical to macro/fig11_incast —
// no fault events, so no corruption windows and no backoff beyond the
// baseline — but tracked as its own committed number so a change that adds
// per-delivery fault-path cost (corruption-window lookups, backoff state
// upkeep) trips the bench_check drop gate even if the fig11 numbers are
// re-baselined for an unrelated reason.
uint64_t MacroFig11FaultOffBatch() {
  hpcc::runner::Experiment e(hpcc::benchgen::Fig11MacroConfig());
  auto result = e.Run();
  if (result.flows_failed != 0 ||
      result.dropped_by_reason[static_cast<int>(
          hpcc::check::DropReason::kCorrupt)] != 0) {
    std::abort();  // the fault-off pin must really be fault-free
  }
  return result.packets_forwarded;
}

// Routing-core fabrics, built lazily (the first RunBench warm-up batch
// absorbs construction) and reused across batches.
struct RouteBenchFabric {
  hpcc::sim::Simulator sim;
  hpcc::topo::FatTreeTopology ft;
  bool down = false;

  explicit RouteBenchFabric(const hpcc::topo::FatTreeOptions& o) {
    ft = hpcc::topo::MakeFatTree(&sim, o);
  }

  uint64_t FullRebuild() {
    ft.topo->RecomputeRoutes();
    return 1;
  }

  // Link 0 is an agg-core link — the heaviest single-link repair (one pod's
  // destinations lose their distance-preserving paths through that core and
  // rebuild; everything else is O(1) group patches).
  uint64_t FlapRepair() {
    down = !down;
    ft.topo->SetLinkUp(0, /*up=*/!down);
    return 1;
  }

  // The repair bench's self-calibrated batch count can leave link 0 in
  // either state; pin it back up so later measurements (the resident-bytes
  // ratio) always see the same table state.
  void EnsureLinkUp() {
    ft.topo->SetLinkUp(0, true);
    down = false;
  }
};

RouteBenchFabric& K16Fabric() {
  static RouteBenchFabric* f =
      new RouteBenchFabric(hpcc::benchgen::FatTreeK16Options());
  return *f;
}

RouteBenchFabric& K32Fabric() {
  static RouteBenchFabric* f =
      new RouteBenchFabric(hpcc::benchgen::FatTreeK32Options());
  return *f;
}

// Interned-table memory headline on the k=32 fabric: bytes a dense
// per-destination table would hold (vector headers + port payload; heap
// block overhead ignored, so the figure is conservative) over the bytes the
// next-hop-group tables actually hold. Reported as a dimensionless ratio
// x1000 so the bench_check drop gate protects compression.
BenchResult RouteResidentRatioK32() {
  K32Fabric().EnsureLinkUp();
  hpcc::topo::Topology& t = *K32Fabric().ft.topo;
  const double dense =
      static_cast<double>(t.switches().size()) *
          static_cast<double>(t.num_nodes()) * sizeof(std::vector<uint16_t>) +
      static_cast<double>(t.RoutingExpandedPortEntries()) * sizeof(uint16_t);
  const double actual = static_cast<double>(t.RoutingResidentBytes());
  BenchResult r;
  r.name = "micro/route_resident_ratio_k32";
  r.unit = "x1000";
  r.items = static_cast<uint64_t>(dense / actual * 1000.0);
  r.seconds = 1.0;
  return r;
}

// The k=32 payoff scenario's base point, end to end: construction (route
// build + analytic base-RTT), WebSearch load, and the two-tier link-flap
// script repaired incrementally mid-run.
uint64_t MacroFatTree32Batch() {
  hpcc::runner::Experiment e(hpcc::benchgen::FatTree32MacroConfig());
  hpcc::topo::Topology& t = e.topology();
  e.simulator().ScheduleAt(hpcc::sim::Us(25), [&t]() { t.SetLinkUp(0, false); });
  e.simulator().ScheduleAt(hpcc::sim::Us(35), [&t]() { t.SetLinkUp(256, false); });
  e.simulator().ScheduleAt(hpcc::sim::Us(60), [&t]() { t.SetLinkUp(0, true); });
  e.simulator().ScheduleAt(hpcc::sim::Us(75), [&t]() { t.SetLinkUp(256, true); });
  auto result = e.Run();
  return result.packets_forwarded;
}

// The same point on N conservative-PDES lanes. The flap script goes through
// InstallLinkEvent (raw ScheduleAt+SetLinkUp is not legal sharded: link state
// is coordinator-owned), which is byte-identical to the ScheduleAt form at
// shards=1. Work unit stays forwarded packets — identical across shard counts
// by the equivalence contract — so items/sec comparisons are pure wall-clock.
uint64_t MacroFatTree32ShardsBatch(int shards) {
  hpcc::runner::ExperimentConfig cfg = hpcc::benchgen::FatTree32MacroConfig();
  cfg.shards = shards;
  hpcc::runner::Experiment e(cfg);
  e.InstallLinkEvent(hpcc::sim::Us(25), 0, false);
  e.InstallLinkEvent(hpcc::sim::Us(35), 256, false);
  e.InstallLinkEvent(hpcc::sim::Us(60), 0, true);
  e.InstallLinkEvent(hpcc::sim::Us(75), 256, true);
  auto result = e.Run();
  return result.packets_forwarded;
}

// Raw cross-lane handoff fabric cost: push/pop cycles through an SPSC
// HandoffChannel, single-threaded (the channel's memory-order protocol is
// identical either way; the concurrent shape is TSan-covered by
// shard_unit_test). Batches alternate fill and drain so chunk allocation,
// retirement and the wrap path are all on the measured path.
uint64_t ShardHandoffBatch() {
  constexpr int kRounds = 16;
  constexpr size_t kPerRound = 4096;
  hpcc::net::HandoffChannel ch(hpcc::net::HandoffChannel::kDefaultChunkCapacity);
  uint64_t popped = 0;
  for (int r = 0; r < kRounds; ++r) {
    for (size_t i = 0; i < kPerRound; ++i) {
      ch.Push({static_cast<hpcc::sim::TimePs>(r * kPerRound + i),
               static_cast<hpcc::sim::TimePs>(i), nullptr});
    }
    hpcc::net::HandoffRecord rec;
    while (ch.Pop(&rec)) ++popped;
  }
  if (popped != kRounds * kPerRound) std::abort();
  return popped;
}

// Expands a warm-start sweep base document into `points` runs that differ
// only in the post-checkpoint incast burst (the last event), so every point
// shares one WarmFingerprint and the first run's checkpoint serves the rest.
std::vector<hpcc::scenario::ScenarioRun> MakeWarmSweepRuns(const char* doc,
                                                          int points) {
  const hpcc::scenario::Scenario base = hpcc::scenario::ParseScenarioText(doc);
  std::vector<hpcc::scenario::ScenarioRun> runs;
  for (int i = 0; i < points; ++i) {
    hpcc::scenario::ScenarioRun run;
    run.scenario = base;
    hpcc::workload::IncastOptions& burst =
        run.scenario.events.back().incast;
    burst.fan_in = 4 + 2 * (i % 4);
    burst.flow_bytes = 30'000 + static_cast<uint64_t>(i) * 10'000;
    run.label = base.name + "[burst=" + std::to_string(i) + "]";
    run.params.emplace_back("burst", std::to_string(i));
    runs.push_back(std::move(run));
  }
  return runs;
}

// Small dumbbell point for the restore microbenchmark: background load is
// shut off early, the checkpoint sits at 80% of the horizon, and only a
// short incast tail runs after the restore.
constexpr const char* kSnapshotRestoreDoc = R"({
  "name": "bench_snapshot_restore",
  "topology": {"kind": "dumbbell", "hosts_per_side": 4,
                "host_gbps": 100, "trunk_gbps": 400},
  "cc": {"scheme": "hpcc"},
  "workload": {"load": 0.3, "trace": "websearch", "max_flows": 30},
  "duration_ms": 0.5,
  "seed": 3,
  "events": [
    {"type": "load_phase", "at_us": 80, "load": 0.0},
    {"type": "incast", "at_us": 420, "fan_in": 4, "flow_bytes": 100000}
  ],
  "warm_start": {"until_us": 400}
})";

// One warm member run per batch against pre-seeded caches (the lazy seeding
// run — the checkpoint builder — happens once, absorbed by the warm-up
// batch). Aborts if the member does not actually restore: a silent cold
// fallback would quietly turn this into a build benchmark.
uint64_t SnapshotRestoreBatch() {
  struct Fixture {
    std::vector<hpcc::scenario::ScenarioRun> runs;
    std::shared_ptr<hpcc::scenario::FabricCache> fabrics;
    std::shared_ptr<hpcc::scenario::WarmCache> warms;
  };
  static Fixture* f = []() {
    auto* fx = new Fixture;
    fx->runs = MakeWarmSweepRuns(kSnapshotRestoreDoc, 2);
    fx->fabrics = std::make_shared<hpcc::scenario::FabricCache>();
    fx->warms = std::make_shared<hpcc::scenario::WarmCache>();
    hpcc::scenario::RunOneOptions ro;
    ro.fabric_cache = fx->fabrics;
    ro.warm_cache = fx->warms;
    const auto seed = hpcc::scenario::ScenarioRunner::RunOne(fx->runs[0], ro);
    if (!seed.error.empty() || !seed.warm_built) {
      std::fprintf(stderr,
                   "micro/snapshot_restore: builder run failed to capture "
                   "(error=\"%s\" built=%d)\n",
                   seed.error.c_str(), seed.warm_built ? 1 : 0);
      std::abort();
    }
    return fx;
  }();
  hpcc::scenario::RunOneOptions ro;
  ro.fabric_cache = f->fabrics;
  ro.warm_cache = f->warms;
  const auto r = hpcc::scenario::ScenarioRunner::RunOne(f->runs[1], ro);
  if (!r.error.empty() || !r.warm_restored) {
    std::fprintf(stderr,
                 "micro/snapshot_restore: member run failed to restore "
                 "(error=\"%s\" restored=%d)\n",
                 r.error.c_str(), r.warm_restored ? 1 : 0);
    std::abort();
  }
  return 1;
}

// The k=32 sweep-amortization pair: FB-Hadoop background load generated only
// in the first 40us, whose largest flow drains by ~1.3ms (measured; the
// quiescence gate would refuse an earlier checkpoint), so the checkpoint at
// 1.4ms captures an idle fabric and only the incast tail runs per grid
// point. 8 points on the post-checkpoint axis. Kept structurally in sync
// with examples/scenarios/fattree32_warm_sweep.json.
constexpr const char* kFatTree32WarmSweepDoc = R"({
  "name": "fattree32_warm_sweep",
  "topology": {"kind": "fattree", "pods": 32, "tors_per_pod": 16,
                "aggs_per_pod": 16, "cores_per_agg": 16, "hosts_per_tor": 16,
                "host_gbps": 100, "fabric_gbps": 400, "link_delay_us": 1},
  "cc": {"scheme": "hpcc"},
  "workload": {"load": 0.25, "trace": "fbhadoop", "max_flows": 500},
  "duration_ms": 1.5,
  "seed": 32,
  "events": [
    {"type": "load_phase", "at_us": 40, "load": 0.0},
    {"type": "incast", "at_us": 1425, "fan_in": 8, "flow_bytes": 30000}
  ],
  "warm_start": {"until_us": 1400}
})";

// Whole-sweep wall clock on one worker, warm on or off. Work unit = grid
// points, so the committed cold/warm pair reads directly as the setup
// amortization factor (the simulated tail past the checkpoint is identical
// in both).
uint64_t MacroFatTree32SweepBatch(bool warm) {
  constexpr int kPoints = 8;
  const std::vector<hpcc::scenario::ScenarioRun> runs =
      MakeWarmSweepRuns(kFatTree32WarmSweepDoc, kPoints);
  hpcc::scenario::ScenarioRunnerOptions opts;
  opts.jobs = 1;
  opts.warm = warm;
  const std::vector<hpcc::scenario::SweepRunResult> results =
      hpcc::scenario::ScenarioRunner(opts).RunAll(runs);
  size_t built = 0, restored = 0;
  for (const hpcc::scenario::SweepRunResult& r : results) {
    if (!r.error.empty()) {
      std::fprintf(stderr, "macro/fattree32_sweep: %s failed: %s\n",
                   r.label.c_str(), r.error.c_str());
      std::abort();
    }
    built += r.warm_built ? 1 : 0;
    restored += r.warm_restored ? 1 : 0;
  }
  // Self-validating: warm must actually engage (one builder, the rest
  // restored), cold must not touch the warm machinery at all.
  if (warm && (built != 1 || restored != kPoints - 1)) {
    std::fprintf(stderr,
                 "macro/fattree32_sweep_warm: checkpoint did not engage "
                 "(built=%zu restored=%zu of %d points)\n",
                 built, restored, kPoints);
    std::abort();
  }
  if (!warm && (built != 0 || restored != 0)) {
    std::fprintf(stderr,
                 "macro/fattree32_sweep_cold: warm machinery ran cold-path "
                 "(built=%zu restored=%zu)\n",
                 built, restored);
    std::abort();
  }
  return kPoints;
}

// Raw hybrid-engine tick cost: a standing population of fluid flows on the
// small fat-tree, driven for a fixed simulated span; work unit = flow-ticks
// (one flow updated for one RTT round), the per-tick cost the "fluid
// background is O(flows) per RTT, not O(packets)" claim rests on.
uint64_t MicroFluidTickBatch() {
  constexpr int kFlows = 64;
  hpcc::runner::ExperimentConfig cfg;
  cfg.topology = hpcc::runner::TopologyKind::kFatTree;  // 32 hosts
  cfg.cc.scheme = "hpcc";
  cfg.hybrid.enabled = true;
  cfg.duration = hpcc::sim::Ms(5);
  hpcc::runner::Experiment e(cfg);
  const std::vector<uint32_t>& hosts = e.hosts();
  for (int i = 0; i < kFlows; ++i) {
    // Long-lived (never completing within the span) so the population is
    // constant and every tick does kFlows of work.
    e.AddWorkloadFlow(hpcc::workload::FlowClass::kFluid, /*lane=*/0,
                      hosts[static_cast<size_t>(i) % hosts.size()],
                      hosts[static_cast<size_t>(i + 9) % hosts.size()],
                      /*bytes=*/1'000'000'000, /*start=*/0);
  }
  e.RunUntil(hpcc::sim::Ms(5));
  const uint64_t ticks = e.fluid_region()->ticks();
  if (ticks == 0) std::abort();
  return ticks * kFlows;
}

// The fattree48_hybrid payoff point end to end: 27648-host fabric build plus
// the hybrid run (fluid WebSearch background, 64-way packet incast
// foreground). Work unit = switch-forwarded packets — the foreground packet
// work the hybrid engine frees the event budget for — over wall time that
// includes construction, so the committed number is the "time to first
// hybrid result at 27k hosts" headline. Kept structurally in sync with
// examples/scenarios/fattree48_hybrid.json (one incast event instead of the
// periodic train, to bound the single-batch runtime).
constexpr const char* kFatTree48HybridDoc = R"({
  "name": "fattree48_hybrid",
  "topology": {"kind": "fattree", "pods": 24, "tors_per_pod": 24,
                "aggs_per_pod": 24, "cores_per_agg": 24, "hosts_per_tor": 48,
                "host_gbps": 100, "fabric_gbps": 400, "link_delay_us": 1},
  "cc": {"scheme": "hpcc"},
  "workload": {"load": 0.25, "trace": "websearch", "max_flows": 2000,
               "flow_class": "fluid",
               "incast": {"fan_in": 64, "flow_bytes": 30000,
                          "first_event_us": 50, "period_us": 200}},
  "hybrid": {},
  "duration_ms": 0.5,
  "drain_factor": 10,
  "seed": 48
})";

uint64_t MacroFatTree48HybridBatch() {
  const hpcc::scenario::Scenario s =
      hpcc::scenario::ParseScenarioText(kFatTree48HybridDoc);
  hpcc::scenario::ScenarioRun run;
  run.scenario = s;
  run.label = s.name;
  const auto r = hpcc::scenario::ScenarioRunner::RunOne(run, {});
  if (!r.error.empty()) {
    std::fprintf(stderr, "macro/fattree48_hybrid failed: %s\n",
                 r.error.c_str());
    std::abort();
  }
  if (r.result.fluid_flows_created == 0 || r.result.packets_forwarded == 0) {
    std::abort();  // both engines must actually have run
  }
  return r.result.packets_forwarded;
}

// The label is user-supplied; escape it so the report stays valid JSON.
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out += c;
  }
  return out;
}

void WriteJson(const std::string& path, const std::string& label,
               const std::vector<BenchResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n";
  out << "  \"schema\": \"hpccsim-bench-v1\",\n";
  out << "  \"label\": \"" << JsonEscape(label) << "\",\n";
  out << "  \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    const double per_sec =
        r.seconds > 0 ? static_cast<double>(r.items) / r.seconds : 0;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"unit\": \"%s\", \"items\": %llu, "
                  "\"seconds\": %.6f, \"items_per_sec\": %.0f}%s\n",
                  r.name.c_str(), r.unit,
                  static_cast<unsigned long long>(r.items), r.seconds, per_sec,
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_current.json";
  std::string label = "current";
  double min_seconds = 0.5;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (hpcc::cli::ConsumeFlag(argv[i], "--out", &v)) {
      out_path = v;
    } else if (hpcc::cli::ConsumeFlag(argv[i], "--label", &v)) {
      label = v;
    } else if (hpcc::cli::ConsumeFlag(argv[i], "--min-time-ms", &v)) {
      min_seconds = std::atof(v) / 1000.0;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      min_seconds = 0.05;
    } else {
      std::fprintf(stderr,
                   "usage: bench_report [--out=FILE] [--label=NAME]\n"
                   "                    [--min-time-ms=MS] [--quick]\n");
      return 2;
    }
  }

  std::vector<BenchResult> results;
  results.push_back(RunBench("event_loop/schedule_run", "events", min_seconds,
                             EventLoopScheduleRunBatch));
  results.push_back(RunBench("event_loop/timer_churn", "timers", min_seconds,
                             EventLoopTimerChurnBatch));
  results.push_back(RunBench("forward_path/packet_cycle", "packets",
                             min_seconds, PacketCycleBatch));
  results.push_back(
      RunBench("macro/fig11_incast", "pkts", min_seconds, MacroFig11Batch));
  results.push_back(RunBench("macro/fig11_nofastpath", "pkts", min_seconds,
                             MacroFig11NoFastpathBatch));
  results.push_back(RunBench("macro/fig11_checked", "pkts", min_seconds,
                             MacroFig11CheckedBatch));
  results.push_back(RunBench("macro/fig11_faultoff", "pkts", min_seconds,
                             MacroFig11FaultOffBatch));
  results.push_back(RunBench("micro/telemetry_overhead", "pkts", min_seconds,
                             TelemetryOverheadBatch));
  results.push_back(RunBench("macro/fig11_telemetry", "pkts", min_seconds,
                             MacroFig11TelemetryBatch));
  results.push_back(RunBench("micro/route_full_k16", "rebuilds", min_seconds,
                             []() { return K16Fabric().FullRebuild(); }));
  results.push_back(RunBench("micro/route_incr_k16", "repairs", min_seconds,
                             []() { return K16Fabric().FlapRepair(); }));
  results.push_back(RunBench("micro/route_full_k32", "rebuilds", min_seconds,
                             []() { return K32Fabric().FullRebuild(); }));
  results.push_back(RunBench("micro/route_incr_k32", "repairs", min_seconds,
                             []() { return K32Fabric().FlapRepair(); }));
  results.push_back(RouteResidentRatioK32());
  results.push_back(
      RunBench("macro/fattree32", "pkts", min_seconds, MacroFatTree32Batch));
  results.push_back(RunBench("macro/fattree32_shards1", "pkts", min_seconds,
                             []() { return MacroFatTree32ShardsBatch(1); }));
  results.push_back(RunBench("macro/fattree32_shards2", "pkts", min_seconds,
                             []() { return MacroFatTree32ShardsBatch(2); }));
  results.push_back(RunBench("macro/fattree32_shards4", "pkts", min_seconds,
                             []() { return MacroFatTree32ShardsBatch(4); }));
  results.push_back(RunBench("micro/shard_handoff", "records", min_seconds,
                             ShardHandoffBatch));
  results.push_back(RunBench("micro/snapshot_restore", "restores",
                             min_seconds, SnapshotRestoreBatch));
  results.push_back(RunBench("micro/fluid_tick", "flow_ticks", min_seconds,
                             MicroFluidTickBatch));
  // Single batch past the warm-up: the work is one fixed 27k-host point, so
  // more batches would only repeat it (same rationale as the sweep pair).
  results.push_back(RunBench("macro/fattree48_hybrid", "pkts",
                             /*min_seconds=*/0, MacroFatTree48HybridBatch));
  // The sweep pair self-calibrates to exactly one batch past the warm-up:
  // the work is a fixed 8-point grid, so more batches would only repeat it.
  results.push_back(
      RunBench("macro/fattree32_sweep_cold", "points", /*min_seconds=*/0,
               []() { return MacroFatTree32SweepBatch(false); }));
  results.push_back(
      RunBench("macro/fattree32_sweep_warm", "points", /*min_seconds=*/0,
               []() { return MacroFatTree32SweepBatch(true); }));

  for (const BenchResult& r : results) {
    const double per_sec =
        r.seconds > 0 ? static_cast<double>(r.items) / r.seconds : 0;
    std::printf("%-28s %12.0f %s/sec  (%llu in %.3fs)\n", r.name.c_str(),
                per_sec, r.unit, static_cast<unsigned long long>(r.items),
                r.seconds);
  }
  WriteJson(out_path, label, results);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
