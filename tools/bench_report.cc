// bench_report: self-contained perf harness for the simulator hot paths.
//
// Unlike bench_micro (google-benchmark, optional dependency) this tool builds
// everywhere and emits a machine-readable JSON report, so the repo can keep a
// committed perf trajectory: run it before a perf change to produce
// BENCH_baseline.json and after to produce BENCH_current.json, e.g.
//
//   build/bench_report --label=baseline --out=BENCH_baseline.json
//   build/bench_report --label=current  --out=BENCH_current.json
//
// Benchmarks:
//   event_loop/schedule_run   schedule N events (capture > std::function SBO)
//                             and drain — the simulator's core throughput
//   event_loop/timer_churn    schedule+cancel+reschedule, the RTO/CC-timer
//                             pattern (exercises Cancel and slot reuse)
//   forward_path/packet_cycle data-packet + ACK factory round trip, the
//                             per-hop allocation cost the pool removes
//   macro/fig11_incast        Fig. 11-style star incast+load run on the
//                             transmission-train fast path; reports switch-
//                             forwarded packets per wall-second end to end
//                             (a work unit independent of the transmit
//                             engine — the fast path executes fewer events
//                             for the same forwarding work). Invariant-
//                             monitor hook sites are compiled in with no
//                             monitor registered.
//   macro/fig11_nofastpath    the same run on the per-packet reference
//                             engine (--fastpath=off): the committed pair of
//                             these two numbers is the same-host A/B for the
//                             fast path.
//   macro/fig11_checked       the fast-path run with every standard
//                             invariant monitor attached — the measured cost
//                             of always-on checking (used by fuzz/CI, not by
//                             perf runs)
//
// Each benchmark self-calibrates: batches repeat until the measured wall time
// reaches --min-time-ms (default 500 ms; --quick drops it to 50 ms for CI
// smoke jobs).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_hotpath.h"
#include "check/monitors.h"
#include "net/packet.h"
#include "runner/experiment.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "tools/cli_util.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct BenchResult {
  std::string name;
  uint64_t items = 0;      // work units processed (events, packets, ...)
  double seconds = 0;      // wall time spent processing them
  const char* unit = "items";
};

// Runs `batch` (which returns the number of items it processed) until the
// accumulated wall time reaches `min_seconds`.
template <typename Batch>
BenchResult RunBench(const std::string& name, const char* unit,
                     double min_seconds, Batch&& batch) {
  BenchResult r;
  r.name = name;
  r.unit = unit;
  // Warm-up batch: touches code and allocator caches, excluded from timing.
  batch();
  const auto t0 = Clock::now();
  do {
    r.items += batch();
    r.seconds = SecondsSince(t0);
  } while (r.seconds < min_seconds);
  return r;
}

// Steady-state event churn (bench_hotpath.h, shared with bench_micro's
// BM_SimulatorSteadyChurn) at a realistic pending-queue depth.
uint64_t EventLoopScheduleRunBatch() {
  constexpr int kPending = 512;
  constexpr uint64_t kEvents = 100'000;
  const uint64_t executed = hpcc::benchgen::RunSteadyChurn(kPending, kEvents);
  if (executed < kEvents) std::abort();
  return executed;
}

// RTO-style timer churn (bench_hotpath.h, shared with bench_micro's
// BM_SimulatorTimerChurn): Schedule+Cancel pairs plus one drain per batch.
uint64_t EventLoopTimerChurnBatch() {
  static uint64_t fired = 0;
  return hpcc::benchgen::RunTimerChurn(&fired);
}

uint64_t PacketCycleBatch() {
  constexpr int kPackets = 20'000;
  uint64_t bytes = 0;
  for (int i = 0; i < kPackets; ++i) {
    auto data = hpcc::net::MakeDataPacket(
        /*flow_id=*/7, /*src=*/1, /*dst=*/2,
        /*seq=*/static_cast<uint64_t>(i) * 1000, /*payload_bytes=*/1000,
        /*int_enabled=*/true, /*ecn_capable=*/false);
    auto ack = hpcc::net::MakeAck(*data, data->seq + 1000);
    bytes += static_cast<uint64_t>(data->size_bytes() + ack->size_bytes());
  }
  if (bytes == 1) std::abort();
  return kPackets;
}

// Fig. 11-style macro point (bench_hotpath.h, shared with bench_micro's
// BM_MacroFig11Incast): the metric is switch-forwarded packets per
// wall-second, the end-to-end figure of merit for the §5 harness.
uint64_t MacroFig11Batch() {
  hpcc::runner::Experiment e(hpcc::benchgen::Fig11MacroConfig());
  auto result = e.Run();
  return result.packets_forwarded;
}

// The identical workload on the per-packet reference engine: the committed
// fastpath-vs-reference pair is a same-host A/B (both runs forward exactly
// the same packets — the determinism suite pins that).
uint64_t MacroFig11NoFastpathBatch() {
  hpcc::runner::Experiment e(
      hpcc::benchgen::Fig11MacroConfig(/*fast_path=*/false));
  auto result = e.Run();
  return result.packets_forwarded;
}

// The same macro point with the full standard monitor set attached: the
// price of always-on invariant checking, reported next to the unmonitored
// number so the overhead is a first-class tracked quantity.
uint64_t MacroFig11CheckedBatch() {
  hpcc::check::MonitorRegistry registry;
  hpcc::runner::Experiment e(hpcc::benchgen::Fig11MacroConfig());
  hpcc::check::InstallStandardMonitors(registry, e);
  auto result = e.Run();
  registry.Finish(e.simulator().now());
  if (registry.violation_count() != 0) std::abort();  // bench must run clean
  return result.packets_forwarded;
}

// The label is user-supplied; escape it so the report stays valid JSON.
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out += c;
  }
  return out;
}

void WriteJson(const std::string& path, const std::string& label,
               const std::vector<BenchResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n";
  out << "  \"schema\": \"hpccsim-bench-v1\",\n";
  out << "  \"label\": \"" << JsonEscape(label) << "\",\n";
  out << "  \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    const double per_sec =
        r.seconds > 0 ? static_cast<double>(r.items) / r.seconds : 0;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"unit\": \"%s\", \"items\": %llu, "
                  "\"seconds\": %.6f, \"items_per_sec\": %.0f}%s\n",
                  r.name.c_str(), r.unit,
                  static_cast<unsigned long long>(r.items), r.seconds, per_sec,
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_current.json";
  std::string label = "current";
  double min_seconds = 0.5;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (hpcc::cli::ConsumeFlag(argv[i], "--out", &v)) {
      out_path = v;
    } else if (hpcc::cli::ConsumeFlag(argv[i], "--label", &v)) {
      label = v;
    } else if (hpcc::cli::ConsumeFlag(argv[i], "--min-time-ms", &v)) {
      min_seconds = std::atof(v) / 1000.0;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      min_seconds = 0.05;
    } else {
      std::fprintf(stderr,
                   "usage: bench_report [--out=FILE] [--label=NAME]\n"
                   "                    [--min-time-ms=MS] [--quick]\n");
      return 2;
    }
  }

  std::vector<BenchResult> results;
  results.push_back(RunBench("event_loop/schedule_run", "events", min_seconds,
                             EventLoopScheduleRunBatch));
  results.push_back(RunBench("event_loop/timer_churn", "timers", min_seconds,
                             EventLoopTimerChurnBatch));
  results.push_back(RunBench("forward_path/packet_cycle", "packets",
                             min_seconds, PacketCycleBatch));
  results.push_back(
      RunBench("macro/fig11_incast", "pkts", min_seconds, MacroFig11Batch));
  results.push_back(RunBench("macro/fig11_nofastpath", "pkts", min_seconds,
                             MacroFig11NoFastpathBatch));
  results.push_back(RunBench("macro/fig11_checked", "pkts", min_seconds,
                             MacroFig11CheckedBatch));

  for (const BenchResult& r : results) {
    const double per_sec =
        r.seconds > 0 ? static_cast<double>(r.items) / r.seconds : 0;
    std::printf("%-28s %12.0f %s/sec  (%llu in %.3fs)\n", r.name.c_str(),
                per_sec, r.unit, static_cast<unsigned long long>(r.items),
                r.seconds);
  }
  WriteJson(out_path, label, results);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
