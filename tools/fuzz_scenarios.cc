// fuzz_scenarios — deterministic scenario fuzzer CLI.
//
// Generates --runs random-but-valid scenarios from --seed, runs each under
// the full invariant-monitor set (conservation, queue bounds, PFC sanity,
// INT monotonicity, CC sanity, lossless drops) plus an event-budget
// watchdog, and runs each twice to cross-check the golden-trace hash. Any
// violation writes the offending scenario as a runnable reproducer JSON:
//
//   fuzz_scenarios --seed=42 --runs=50
//   scenario_main repro_fuzz_42_17.json --check   # replay a violation
//
// Exit code 0 iff every run was violation-free.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "check/fuzzer.h"
#include "tools/cli_util.h"

int main(int argc, char** argv) {
  hpcc::check::FuzzOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (hpcc::cli::ConsumeFlag(argv[i], "--seed", &v)) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (hpcc::cli::ConsumeFlag(argv[i], "--runs", &v)) {
      options.runs = std::atoi(v);
    } else if (hpcc::cli::ConsumeFlag(argv[i], "--out-dir", &v)) {
      options.reproducer_dir = v;
    } else if (hpcc::cli::ConsumeFlag(argv[i], "--max-events", &v)) {
      options.max_events = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--no-determinism") == 0) {
      options.check_determinism = false;
    } else if (std::strcmp(argv[i], "--no-fastpath-check") == 0) {
      options.check_fastpath = false;
    } else if (std::strcmp(argv[i], "--no-shard-check") == 0) {
      options.check_shards = false;
    } else if (std::strcmp(argv[i], "--no-warm-check") == 0) {
      options.check_warm = false;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      options.faults = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      options.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed=N] [--runs=N] [--out-dir=DIR]\n"
                   "          [--max-events=N] [--no-determinism]\n"
                   "          [--no-fastpath-check] [--no-shard-check]\n"
                   "          [--no-warm-check] [--faults] [--verbose]\n",
                   argv[0]);
      return 2;
    }
  }
  if (options.runs <= 0) {
    std::fprintf(stderr, "error: --runs must be positive\n");
    return 2;
  }
  return hpcc::check::FuzzMain(options);
}
