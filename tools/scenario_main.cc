// scenario_main — declarative scenario driver.
//
// Loads a JSON scenario file (topology + CC scheme + workload + timed event
// script + sweep grid), expands the sweep, executes the points on a thread
// pool and writes one aggregated CSV. Examples:
//
//   scenario_main examples/scenarios/fig13_link_failure.json
//   scenario_main examples/scenarios/fig11_load_sweep.json --jobs=4
//   scenario_main sweep.json --expand            # list points, don't run
//   scenario_main sweep.json --out=results.csv --quiet
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/runner.h"
#include "tools/cli_util.h"

using namespace hpcc;

namespace {

struct Options {
  std::string file;
  std::string out;  // empty = "<scenario name>.csv"
  std::string trace_out;  // non-empty forces trace export to this path
  int jobs = 0;     // 0 = hardware concurrency
  int fastpath = -1;  // -1 scenario default, 0 reference engine, 1 trains
  int shards = 0;     // 0 scenario default, >= 1 forces that lane count
  bool warm = true;   // --warm=off forces every sweep point to run cold
  bool expand_only = false;
  bool quiet = false;
  bool dump = false;
  bool check = false;
  bool manifest = false;
  bool progress = false;
  double deadline = 0;  // per-point wall deadline in seconds (0 = scenario)
  bool resume = false;  // skip points with a validated "ok" manifest journal
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s FILE [options]\n"
               "  --jobs=N     parallel sweep workers (default: hardware)\n"
               "  --out=PATH   aggregated CSV path (default: <name>.csv)\n"
               "  --expand     print the expanded sweep points and exit\n"
               "  --dump       print the canonicalized scenario JSON and exit\n"
               "  --check      run every point under the invariant monitors\n"
               "               (violations fail the run)\n"
               "  --fastpath=on|off\n"
               "               force the transmission-train fast path on or\n"
               "               off (default: as the scenario says; both\n"
               "               engines produce identical results)\n"
               "  --shards=N   force N execution lanes per point (default:\n"
               "               as the scenario says; any N produces\n"
               "               byte-identical results)\n"
               "  --warm=on|off\n"
               "               share fabric snapshots and warm_start\n"
               "               checkpoints across sweep points (default: on;\n"
               "               off forces cold runs — results are\n"
               "               byte-identical either way)\n"
               "  --trace-out=FILE\n"
               "               write a Chrome/Perfetto trace (sweeps write\n"
               "               one file per point: <stem>.runN.json)\n"
               "  --manifest   write a run manifest JSON next to the CSV\n"
               "  --deadline=SECONDS\n"
               "               per-point wall-clock deadline; a point that\n"
               "               exceeds it fails with \"deadline exceeded\"\n"
               "               instead of wedging the sweep (default: the\n"
               "               scenario's deadline_s, if any)\n"
               "  --resume     skip sweep points whose manifest journal from\n"
               "               a previous (partial) invocation validates as\n"
               "               complete; implies --manifest\n"
               "  --progress   live sweep progress line on stderr\n"
               "  --quiet      suppress per-run progress\n",
               argv0);
  std::exit(2);
}

Options Parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (cli::ConsumeFlag(argv[i], "--jobs", &v)) o.jobs = std::atoi(v);
    else if (cli::ConsumeFlag(argv[i], "--out", &v)) o.out = v;
    else if (cli::ConsumeFlag(argv[i], "--fastpath", &v)) {
      if (std::strcmp(v, "on") == 0) o.fastpath = 1;
      else if (std::strcmp(v, "off") == 0) o.fastpath = 0;
      else Usage(argv[0]);
    }
    else if (cli::ConsumeFlag(argv[i], "--shards", &v)) {
      o.shards = std::atoi(v);
      if (o.shards < 1) Usage(argv[0]);
    }
    else if (cli::ConsumeFlag(argv[i], "--warm", &v)) {
      if (std::strcmp(v, "on") == 0) o.warm = true;
      else if (std::strcmp(v, "off") == 0) o.warm = false;
      else Usage(argv[0]);
    }
    else if (cli::ConsumeFlag(argv[i], "--trace-out", &v)) o.trace_out = v;
    else if (std::strcmp(argv[i], "--expand") == 0) o.expand_only = true;
    else if (std::strcmp(argv[i], "--dump") == 0) o.dump = true;
    else if (std::strcmp(argv[i], "--check") == 0) o.check = true;
    else if (std::strcmp(argv[i], "--manifest") == 0) o.manifest = true;
    else if (cli::ConsumeFlag(argv[i], "--deadline", &v)) {
      o.deadline = std::atof(v);
      if (!(o.deadline > 0)) Usage(argv[0]);
    }
    else if (std::strcmp(argv[i], "--resume") == 0) o.resume = true;
    else if (std::strcmp(argv[i], "--progress") == 0) o.progress = true;
    else if (std::strcmp(argv[i], "--quiet") == 0) o.quiet = true;
    else if (argv[i][0] == '-') Usage(argv[0]);
    else if (o.file.empty()) o.file = argv[i];
    else Usage(argv[0]);
  }
  if (o.file.empty()) Usage(argv[0]);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = Parse(argc, argv);
  if (o.dump || o.expand_only) {
    try {
      const scenario::Scenario sc = scenario::LoadScenarioFile(o.file);
      if (o.dump) {
        std::printf("%s\n", scenario::ScenarioToJson(sc).Dump(2).c_str());
        return 0;
      }
      const auto runs = scenario::ExpandSweep(sc);
      for (const auto& run : runs) std::printf("%s\n", run.label.c_str());
      std::printf("%zu run(s)\n", runs.size());
      return 0;
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error: %s\n", ex.what());
      return 1;
    }
  }

  scenario::ScenarioRunnerOptions ro;
  ro.jobs = o.jobs;
  ro.verbose = !o.quiet;
  ro.check = o.check;
  ro.fastpath_override = o.fastpath;
  ro.shards_override = o.shards;
  ro.trace_out = o.trace_out;
  ro.manifest = o.manifest;
  ro.progress = o.progress;
  ro.warm = o.warm;
  ro.deadline_s = o.deadline;
  ro.resume = o.resume;
  return scenario::RunScenarioFile(o.file, ro, o.out);
}
