// hpccsim — command-line driver for the simulator.
//
// Runs one experiment from flags and prints the FCT slowdown table, queue
// distribution and PFC summary. Examples:
//
//   hpccsim --scheme=hpcc --topo=fattree --load=0.5 --trace=fbhadoop
//   hpccsim --scheme=dcqcn --topo=testbed --load=0.3 --duration-ms=10
//   hpccsim --scheme=hpcc --topo=star --hosts=17 --incast=16
//           --incast-bytes=500000
//   hpccsim --scheme=timely+win --topo=dumbbell --hosts=8 --load=0.4
//   hpccsim --scenario=examples/scenarios/fig13_link_failure.json --jobs=4
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runner/experiment.h"
#include "scenario/runner.h"
#include "tools/cli_util.h"

using namespace hpcc;

namespace {

struct Options {
  std::string scenario;  // declarative mode: run a scenario file instead
  std::string out;       // scenario mode CSV path
  std::string trace_out;  // scenario mode: force Perfetto trace export
  int jobs = 0;          // scenario mode sweep workers
  bool check = false;    // scenario mode: run under the invariant monitors
  bool manifest = false;  // scenario mode: write run manifests
  bool progress = false;  // scenario mode: live sweep progress line
  double deadline = 0;   // scenario mode: per-point wall deadline (seconds)
  bool resume = false;   // scenario mode: skip journaled-complete points
  std::string scheme = "hpcc";
  std::string topo = "fattree";
  std::string trace = "websearch";
  double load = 0.3;
  double duration_ms = 3;
  int hosts = 16;          // star/dumbbell sizing
  int incast_fan_in = 0;   // 0 = no incast add-on
  uint64_t incast_bytes = 500'000;
  uint64_t seed = 1;
  bool lossy = false;
  bool irn = false;
  int fastpath = -1;  // -1 default (on), 0 reference engine, 1 trains
  // 0 = default (scenario's value / 1 in direct mode); >= 1 forces N
  // execution lanes. Works in both modes since results are shard-invariant.
  int shards = 0;
  bool warm = true;  // --warm=off forces every sweep point to run cold
  bool paper_scale = false;
  double eta = 0.95;
  double wai = -1;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --scenario=FILE    run a declarative JSON scenario (sweeps + timed\n"
      "                     events); all flags below are ignored\n"
      "  --jobs=N           scenario mode: parallel sweep workers\n"
      "  --out=PATH         scenario mode: aggregated CSV path\n"
      "  --check            scenario mode: run under invariant monitors\n"
      "  --trace-out=FILE   scenario mode: write a Chrome/Perfetto trace\n"
      "  --manifest         scenario mode: write run manifest JSON(s)\n"
      "  --deadline=SECONDS scenario mode: per-point wall-clock deadline\n"
      "                     (a point exceeding it fails, sweep continues)\n"
      "  --resume           scenario mode: skip points whose manifest\n"
      "                     journal validates as complete (implies\n"
      "                     --manifest)\n"
      "  --progress         scenario mode: live sweep progress on stderr\n"
      "  --scheme=NAME      hpcc|hpcc-rxrate|hpcc-perack|hpcc-perrtt|\n"
      "                     hpcc-alpha|dcqcn|dcqcn+win|timely|timely+win|\n"
      "                     dctcp|rcp|rcp+win\n"
      "  --topo=KIND        fattree|testbed|star|dumbbell\n"
      "  --trace=NAME       websearch|fbhadoop\n"
      "  --load=F           Poisson load as a fraction of host capacity\n"
      "  --duration-ms=F    workload horizon\n"
      "  --hosts=N          hosts for star/dumbbell\n"
      "  --incast=N         add N-to-1 incast events\n"
      "  --incast-bytes=N   bytes per incast flow\n"
      "  --eta=F --wai=F    HPCC parameters\n"
      "  --lossy            disable PFC (dynamic-threshold drops)\n"
      "  --fastpath=on|off  force the transmission-train fast path (both\n"
      "                     engines produce identical results; off = A/B\n"
      "                     reference)\n"
      "  --shards=N         run on N execution lanes (conservative PDES);\n"
      "                     any N produces byte-identical results\n"
      "  --warm=on|off      scenario mode: share fabric snapshots and\n"
      "                     warm_start checkpoints across sweep points\n"
      "                     (default: on; off forces cold runs — results\n"
      "                     are byte-identical either way)\n"
      "  --irn              IRN loss recovery instead of go-back-N\n"
      "  --paper-scale      320-host FatTree / 32-host testbed\n"
      "  --seed=N\n",
      argv0);
  std::exit(2);
}

Options Parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (cli::ConsumeFlag(argv[i], "--scenario", &v)) o.scenario = v;
    else if (cli::ConsumeFlag(argv[i], "--jobs", &v)) o.jobs = std::atoi(v);
    else if (cli::ConsumeFlag(argv[i], "--out", &v)) o.out = v;
    else if (cli::ConsumeFlag(argv[i], "--trace-out", &v)) o.trace_out = v;
    else if (cli::ConsumeFlag(argv[i], "--scheme", &v)) o.scheme = v;
    else if (cli::ConsumeFlag(argv[i], "--topo", &v)) o.topo = v;
    else if (cli::ConsumeFlag(argv[i], "--trace", &v)) o.trace = v;
    else if (cli::ConsumeFlag(argv[i], "--load", &v)) o.load = std::atof(v);
    else if (cli::ConsumeFlag(argv[i], "--duration-ms", &v)) o.duration_ms = std::atof(v);
    else if (cli::ConsumeFlag(argv[i], "--hosts", &v)) o.hosts = std::atoi(v);
    else if (cli::ConsumeFlag(argv[i], "--incast", &v)) o.incast_fan_in = std::atoi(v);
    else if (cli::ConsumeFlag(argv[i], "--incast-bytes", &v))
      o.incast_bytes = std::strtoull(v, nullptr, 10);
    else if (cli::ConsumeFlag(argv[i], "--eta", &v)) o.eta = std::atof(v);
    else if (cli::ConsumeFlag(argv[i], "--wai", &v)) o.wai = std::atof(v);
    else if (cli::ConsumeFlag(argv[i], "--seed", &v))
      o.seed = std::strtoull(v, nullptr, 10);
    else if (cli::ConsumeFlag(argv[i], "--fastpath", &v)) {
      if (std::strcmp(v, "on") == 0) o.fastpath = 1;
      else if (std::strcmp(v, "off") == 0) o.fastpath = 0;
      else Usage(argv[0]);
    }
    else if (cli::ConsumeFlag(argv[i], "--shards", &v)) {
      o.shards = std::atoi(v);
      if (o.shards < 1) Usage(argv[0]);
    }
    else if (cli::ConsumeFlag(argv[i], "--warm", &v)) {
      if (std::strcmp(v, "on") == 0) o.warm = true;
      else if (std::strcmp(v, "off") == 0) o.warm = false;
      else Usage(argv[0]);
    }
    else if (std::strcmp(argv[i], "--check") == 0) o.check = true;
    else if (std::strcmp(argv[i], "--manifest") == 0) o.manifest = true;
    else if (cli::ConsumeFlag(argv[i], "--deadline", &v)) {
      o.deadline = std::atof(v);
      if (!(o.deadline > 0)) Usage(argv[0]);
    }
    else if (std::strcmp(argv[i], "--resume") == 0) o.resume = true;
    else if (std::strcmp(argv[i], "--progress") == 0) o.progress = true;
    else if (std::strcmp(argv[i], "--lossy") == 0) o.lossy = true;
    else if (std::strcmp(argv[i], "--irn") == 0) o.irn = true;
    else if (std::strcmp(argv[i], "--paper-scale") == 0) o.paper_scale = true;
    else Usage(argv[0]);
  }
  // --jobs/--out (and friends) only mean something in scenario mode;
  // silently ignoring them would leave the user waiting for a CSV or a trace
  // that never appears.
  if (o.scenario.empty() &&
      (o.jobs != 0 || !o.out.empty() || o.check || !o.trace_out.empty() ||
       o.manifest || o.progress || o.deadline > 0 || o.resume)) {
    std::fprintf(stderr,
                 "error: --jobs/--out/--check/--trace-out/--manifest/"
                 "--deadline/--resume/--progress require --scenario=FILE\n");
    std::exit(2);
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = Parse(argc, argv);
  if (!o.scenario.empty()) {
    // Declarative mode: same engine as the standalone scenario_main tool.
    scenario::ScenarioRunnerOptions ro;
    ro.jobs = o.jobs;
    ro.verbose = true;
    ro.check = o.check;
    ro.fastpath_override = o.fastpath;
    ro.shards_override = o.shards;
    ro.warm = o.warm;
    ro.trace_out = o.trace_out;
    ro.manifest = o.manifest;
    ro.progress = o.progress;
    ro.deadline_s = o.deadline;
    ro.resume = o.resume;
    return scenario::RunScenarioFile(o.scenario, ro, o.out);
  }

  runner::ExperimentConfig cfg;
  if (o.topo == "fattree") {
    cfg.topology = runner::TopologyKind::kFatTree;
    if (o.paper_scale) {
      cfg.fattree = topo::FatTreeOptions::PaperScale();
    } else {
      cfg.fattree.pods = 2;
      cfg.fattree.tors_per_pod = 2;
      cfg.fattree.aggs_per_pod = 2;
      cfg.fattree.hosts_per_tor = 4;
    }
  } else if (o.topo == "testbed") {
    cfg.topology = runner::TopologyKind::kTestbed;
    if (!o.paper_scale) cfg.testbed.servers_per_pair = 8;
  } else if (o.topo == "star") {
    cfg.topology = runner::TopologyKind::kStar;
    cfg.star.num_hosts = o.hosts;
  } else if (o.topo == "dumbbell") {
    cfg.topology = runner::TopologyKind::kDumbbell;
    cfg.dumbbell.hosts_per_side = o.hosts / 2;
  } else {
    Usage(argv[0]);
  }

  cfg.cc.scheme = o.scheme;
  cfg.cc.hpcc.eta = o.eta;
  cfg.cc.hpcc.wai_bytes = o.wai;
  cfg.trace = o.trace;
  cfg.load = o.load;
  cfg.duration = static_cast<sim::TimePs>(o.duration_ms * sim::kPsPerMs);
  cfg.seed = o.seed;
  cfg.pfc_enabled = !o.lossy;
  if (o.fastpath >= 0) cfg.fast_path = o.fastpath != 0;
  if (o.shards >= 1) cfg.shards = o.shards;
  cfg.recovery =
      o.irn ? host::RecoveryMode::kIrn : host::RecoveryMode::kGoBackN;
  if (o.incast_fan_in > 0) {
    cfg.incast = true;
    cfg.incast_opts.fan_in = o.incast_fan_in;
    cfg.incast_opts.flow_bytes = o.incast_bytes;
    cfg.incast_opts.first_event = sim::Us(200);
    cfg.incast_opts.period = cfg.duration / 3;
  }

  std::printf("hpccsim: scheme=%s topo=%s trace=%s load=%.0f%% "
              "duration=%.1fms %s%s\n",
              o.scheme.c_str(), o.topo.c_str(), o.trace.c_str(), o.load * 100,
              o.duration_ms, o.lossy ? "lossy " : "PFC ",
              o.irn ? "IRN" : "GBN");
  try {
    runner::Experiment e(cfg);
    std::printf("hosts=%zu base_rtt=%.2fus\n", e.hosts().size(),
                sim::ToUs(e.base_rtt()));
    runner::ExperimentResult r = e.Run();
    std::printf("\n%s\n\nFCT slowdown per size bin:\n%s", r.Summary().c_str(),
                r.fct->FormatTable().c_str());
    if (r.short_fct_us.Count() > 0) {
      std::printf("\nshort-flow latency p50/p95/p99: %.1f/%.1f/%.1f us\n",
                  r.short_fct_us.Percentile(50), r.short_fct_us.Percentile(95),
                  r.short_fct_us.Percentile(99));
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  return 0;
}
