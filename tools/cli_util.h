// Shared flag-parsing helper for the CLI tools.
#pragma once

#include <cstring>

namespace hpcc::cli {

// Matches "--key=value" arguments: returns true and points *value at the
// text after '=' when `arg` starts with `key` immediately followed by '='.
inline bool ConsumeFlag(const char* arg, const char* key, const char** value) {
  const size_t n = std::strlen(key);
  if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

}  // namespace hpcc::cli
